"""Tests for every partitioner family: correctness, invariants, behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import NO_OWNER, Box
from repro.hierarchy import GridHierarchy, PatchLevel
from repro.partition import (
    DomainSfcPartitioner,
    NatureFableParams,
    NaturePlusFable,
    PartitionResult,
    PatchBasedPartitioner,
    StickyRepartitioner,
    column_workloads,
    proc_loads,
)

ALL_PARTITIONERS = [
    DomainSfcPartitioner(),
    DomainSfcPartitioner(curve="morton"),
    DomainSfcPartitioner(exact=True, unit_size=1),
    PatchBasedPartitioner(),
    PatchBasedPartitioner(strategy="round-robin"),
    PatchBasedPartitioner(split_oversized=False),
    NaturePlusFable(),
    NaturePlusFable(NatureFableParams().balance_focused()),
    NaturePlusFable(NatureFableParams().locality_focused()),
    NaturePlusFable(NatureFableParams(q=3)),
    StickyRepartitioner(DomainSfcPartitioner()),
    StickyRepartitioner(NaturePlusFable(), migration_budget=None),
]


@pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p.describe()))
@pytest.mark.parametrize("nprocs", [1, 3, 8])
class TestUniversalInvariants:
    def test_complete_and_valid(self, simple_hierarchy, part, nprocs):
        res = part.partition(simple_hierarchy, nprocs)
        res.validate(simple_hierarchy)
        assert res.nprocs == nprocs

    def test_all_ranks_within_range(self, simple_hierarchy, part, nprocs):
        res = part.partition(simple_hierarchy, nprocs)
        for raster in res.rasters():
            owned = raster[raster != NO_OWNER]
            if owned.size:
                assert owned.min() >= 0 and owned.max() < nprocs

    def test_total_load_preserved(self, simple_hierarchy, part, nprocs):
        res = part.partition(simple_hierarchy, nprocs)
        loads = proc_loads(res, simple_hierarchy)
        assert loads.sum() == pytest.approx(simple_hierarchy.workload)

    def test_flat_hierarchy(self, flat_hierarchy, part, nprocs):
        res = part.partition(flat_hierarchy, nprocs)
        res.validate(flat_hierarchy)

    def test_cost_positive(self, simple_hierarchy, part, nprocs):
        assert part.cost_seconds(simple_hierarchy, nprocs) > 0

    def test_describe_has_name(self, simple_hierarchy, part, nprocs):
        assert "name" in part.describe()


@pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p.describe()))
def test_deterministic(simple_hierarchy, part):
    a = part.partition(simple_hierarchy, 4)
    b = part.partition(simple_hierarchy, 4)
    for ra, rb in zip(a.rasters(), b.rasters()):
        np.testing.assert_array_equal(ra, rb)


@pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p.describe()))
def test_on_real_traces(small_traces, part):
    """Every partitioner handles every snapshot of every kernel."""
    for name in ("sc2d", "rm2d"):
        prev = None
        for snap in small_traces[name]:
            res = part.partition(snap.hierarchy, 4, previous=prev)
            res.validate(snap.hierarchy)
            prev = res


class TestPartitionResult:
    def test_owners_shim_warns_and_matches_rasters(self, simple_hierarchy):
        res = DomainSfcPartitioner().partition(simple_hierarchy, 4)
        with pytest.warns(DeprecationWarning, match="OwnerMap"):
            legacy = res.owners
        for shim, raster in zip(legacy, res.rasters()):
            np.testing.assert_array_equal(shim, raster)

    def test_legacy_raster_construction_round_trips(self):
        raster = np.array([[0, 0, 1], [2, 2, 1]], dtype=np.int32)
        res = PartitionResult(owners=(raster,), nprocs=3)
        np.testing.assert_array_equal(res.maps[0].rasterize(), raster)
        np.testing.assert_array_equal(res.rasters()[0], raster)

    def test_maps_and_owners_are_exclusive(self):
        raster = np.zeros((2, 2), dtype=np.int32)
        from repro.geometry import OwnerMap

        with pytest.raises(ValueError, match="exactly one"):
            PartitionResult(
                maps=(OwnerMap.from_raster(raster),), owners=(raster,), nprocs=1
            )
        with pytest.raises(ValueError, match="exactly one"):
            PartitionResult(nprocs=1)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="int32"):
            PartitionResult(
                owners=(np.zeros((4, 4), dtype=np.int64),), nprocs=2
            )

    def test_rejects_bad_nprocs(self):
        with pytest.raises(ValueError):
            PartitionResult(owners=(), nprocs=0)

    def test_validate_detects_unowned(self, flat_hierarchy):
        raster = np.full((16, 16), NO_OWNER, dtype=np.int32)
        res = PartitionResult(owners=(raster,), nprocs=2)
        with pytest.raises(ValueError, match="unowned"):
            res.validate(flat_hierarchy)

    def test_validate_detects_level_count(self, simple_hierarchy):
        raster = np.zeros((16, 16), dtype=np.int32)
        res = PartitionResult(owners=(raster,), nprocs=2)
        with pytest.raises(ValueError, match="rasters for"):
            res.validate(simple_hierarchy)

    def test_validate_detects_out_of_range_rank(self, flat_hierarchy):
        raster = np.full((16, 16), 5, dtype=np.int32)
        res = PartitionResult(owners=(raster,), nprocs=2)
        with pytest.raises(ValueError, match="outside"):
            res.validate(flat_hierarchy)


class TestDomainSfc:
    def test_column_workloads(self, simple_hierarchy):
        w = column_workloads(simple_hierarchy, unit_size=2)
        assert w.shape == (8, 8)
        assert w.sum() == pytest.approx(simple_hierarchy.workload)
        # Columns under the refinement are heavier than unrefined ones.
        assert w.max() > w.min()

    def test_unit_size_must_divide(self, simple_hierarchy):
        with pytest.raises(ValueError, match="does not divide"):
            column_workloads(simple_hierarchy, unit_size=3)

    def test_column_alignment_property(self, simple_hierarchy):
        """Domain-based: all levels above a base column share the owner."""
        part = DomainSfcPartitioner(unit_size=1)
        res = part.partition(simple_hierarchy, 4)
        base = res.rasters()[0]
        for l in range(1, simple_hierarchy.nlevels):
            ratio = simple_hierarchy.cumulative_ratio(l)
            up = np.repeat(np.repeat(base, ratio, 0), ratio, 1)
            raster = res.rasters()[l]
            owned = raster != NO_OWNER
            np.testing.assert_array_equal(raster[owned], up[owned])

    def test_exact_beats_greedy_imbalance(self, small_traces):
        h = small_traces["sc2d"][-1].hierarchy
        greedy = DomainSfcPartitioner(unit_size=1)
        exact = DomainSfcPartitioner(unit_size=1, exact=True)
        li_g = proc_loads(greedy.partition(h, 8), h).max()
        li_e = proc_loads(exact.partition(h, 8), h).max()
        assert li_e <= li_g + 1e-9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DomainSfcPartitioner(curve="zigzag")
        with pytest.raises(ValueError):
            DomainSfcPartitioner(unit_size=0)


class TestPatchBased:
    def test_lpt_beats_round_robin(self, small_traces):
        h = small_traces["rm2d"][-1].hierarchy
        lpt = PatchBasedPartitioner()
        rr = PatchBasedPartitioner(strategy="round-robin")
        li_lpt = proc_loads(lpt.partition(h, 8), h).max()
        li_rr = proc_loads(rr.partition(h, 8), h).max()
        assert li_lpt <= li_rr + 1e-9

    def test_split_oversized_caps_patches(self):
        # One giant patch on level 1 must be chopped across ranks.
        domain = Box((0, 0), (16, 16))
        h = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((0, 0), (32, 32))], ratio=2),
            ],
        )
        res = PatchBasedPartitioner().partition(h, 4)
        counts = np.bincount(
            res.rasters()[1][res.rasters()[1] != NO_OWNER], minlength=4
        )
        assert (counts > 0).all()  # every rank got a share of the big patch

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            PatchBasedPartitioner(strategy="magic")


class TestNaturePlusFable:
    def test_default_params(self):
        p = NaturePlusFable()
        assert p.params.bilevel_size == 2

    def test_balance_focused_has_smaller_units(self):
        base = NatureFableParams()
        bal = base.balance_focused()
        assert bal.atomic_unit <= base.atomic_unit
        assert bal.fractional_blocking

    def test_locality_focused_uses_hilbert(self):
        loc = NatureFableParams().locality_focused()
        assert loc.curve == "hilbert"
        assert loc.q == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"atomic_unit": 0},
            {"q": 0},
            {"curve": "peano"},
            {"bilevel_size": 0},
        ],
    )
    def test_param_validation(self, kwargs):
        with pytest.raises(ValueError):
            NatureFableParams(**kwargs)

    def test_bilevel_alignment(self, simple_hierarchy):
        """Within a bi-level, fine owners refine the coarse decomposition."""
        part = NaturePlusFable(NatureFableParams(bilevel_size=2))
        res = part.partition(simple_hierarchy, 4)
        coarse = res.rasters()[0]
        fine = res.rasters()[1]
        up = np.repeat(np.repeat(coarse, 2, 0), 2, 1)
        owned = fine != NO_OWNER
        # Where both the level-0 cell is in a core and the level-1 cell is
        # refined, the bi-level decomposition makes them agree.
        refined_base = simple_hierarchy.refined_mask_on_base()
        core_up = np.repeat(np.repeat(refined_base, 2, 0), 2, 1)
        sel = owned & core_up
        np.testing.assert_array_equal(fine[sel], up[sel])

    def test_q_improves_balance(self, small_traces):
        h = small_traces["sc2d"][-1].hierarchy
        q1 = NaturePlusFable(NatureFableParams(q=1))
        q4 = NaturePlusFable(NatureFableParams(q=4, atomic_unit=1))
        li_1 = proc_loads(q1.partition(h, 8), h).max()
        li_4 = proc_loads(q4.partition(h, 8), h).max()
        assert li_4 <= li_1 * 1.05  # q>1 should not be (meaningfully) worse

    def test_group_allocation_stability(self):
        """Small workload drift moves at most boundary ranks."""
        alloc = NaturePlusFable._allocate_groups
        a = alloc([10.0, 30.0, 60.0], 10)
        b = alloc([11.0, 30.0, 59.0], 10)
        # Same number of groups, sizes differ by at most 1.
        for ga, gb in zip(a, b):
            assert abs(ga.size - gb.size) <= 1

    def test_group_allocation_covers_all_ranks(self):
        alloc = NaturePlusFable._allocate_groups
        groups = alloc([5.0, 1.0, 1.0], 8)
        all_ranks = np.concatenate(groups)
        np.testing.assert_array_equal(np.sort(all_ranks), np.arange(8))

    def test_more_regions_than_ranks(self):
        alloc = NaturePlusFable._allocate_groups
        groups = alloc([1.0] * 5, 3)
        assert len(groups) == 5
        for g in groups:
            assert g.size == 1 and 0 <= g[0] < 3


class TestSticky:
    def test_first_call_matches_inner(self, simple_hierarchy):
        inner = DomainSfcPartitioner()
        sticky = StickyRepartitioner(inner)
        a = sticky.partition(simple_hierarchy, 4)
        b = inner.partition(simple_hierarchy, 4)
        for ra, rb in zip(a.rasters(), b.rasters()):
            np.testing.assert_array_equal(ra, rb)

    def test_identical_hierarchy_zero_migration(self, simple_hierarchy):
        from repro.simulator import migration_cells

        sticky = StickyRepartitioner(NaturePlusFable(), migration_budget=0.0)
        first = sticky.partition(simple_hierarchy, 4)
        second = sticky.partition(simple_hierarchy, 4, previous=first)
        assert migration_cells(first, second) == 0

    def test_reduces_migration_vs_fresh(self, small_traces):
        from repro.simulator import migration_cells

        inner = NaturePlusFable()
        sticky = StickyRepartitioner(inner, migration_budget=0.05)
        prev_f = prev_s = None
        fresh_total = sticky_total = 0
        for snap in small_traces["sc2d"]:
            cur_f = inner.partition(snap.hierarchy, 4, prev_f)
            cur_s = sticky.partition(snap.hierarchy, 4, prev_s)
            if prev_f is not None:
                fresh_total += migration_cells(prev_f, cur_f)
                sticky_total += migration_cells(prev_s, cur_s)
            prev_f, prev_s = cur_f, cur_s
        assert sticky_total <= fresh_total

    def test_nprocs_change_resets(self, simple_hierarchy):
        sticky = StickyRepartitioner(DomainSfcPartitioner())
        first = sticky.partition(simple_hierarchy, 4)
        second = sticky.partition(simple_hierarchy, 8, previous=first)
        second.validate(simple_hierarchy)
        assert second.nprocs == 8

    def test_param_validation(self):
        with pytest.raises(ValueError):
            StickyRepartitioner(DomainSfcPartitioner(), imbalance_tolerance=0.5)
        with pytest.raises(ValueError):
            StickyRepartitioner(DomainSfcPartitioner(), migration_budget=-0.1)

    def test_diffusion_respects_tolerance_when_unbounded(self, small_traces):
        h = small_traces["sc2d"][-1].hierarchy
        prev_h = small_traces["sc2d"][-2].hierarchy
        inner = DomainSfcPartitioner(unit_size=1)
        sticky = StickyRepartitioner(
            inner, imbalance_tolerance=1.5, migration_budget=None
        )
        prev = sticky.partition(prev_h, 4)
        res = sticky.partition(h, 4, previous=prev)
        loads = proc_loads(res, h)
        inner_loads = proc_loads(inner.partition(h, 4), h)
        # The diffusion pass should not be wildly worse than the fresh
        # partition's bottleneck.
        assert loads.max() <= max(
            1.5 * loads.mean() + 1e-9, inner_loads.max() * 1.5
        )
