"""Hand-computed cases for the raster metric kernels."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.geometry import NO_OWNER
from repro.partition import PartitionResult
from repro.simulator import (
    ghost_exchange_cells,
    ghost_message_pairs,
    interlevel_transfer_cells,
    migration_cells,
    per_rank_comm_cells,
)


def owners(array) -> np.ndarray:
    return np.asarray(array, dtype=np.int32)


def random_owners(rng, shape, nprocs=5, hole_fraction=0.3) -> np.ndarray:
    raster = rng.integers(0, nprocs, size=shape).astype(np.int32)
    raster[rng.random(shape) < hole_fraction] = NO_OWNER
    return raster


class TestGhostExchange:
    def test_two_halves(self):
        raster = owners([[0, 0, 1, 1]] * 4).T  # vertical split, 4 faces
        assert ghost_exchange_cells(raster, ghost_width=1) == 8

    def test_uniform_no_comm(self):
        raster = owners(np.zeros((4, 4)))
        assert ghost_exchange_cells(raster) == 0

    def test_unrefined_cells_ignored(self):
        raster = owners(np.full((4, 4), NO_OWNER))
        raster[0, 0] = 0
        raster[0, 1] = 1
        assert ghost_exchange_cells(raster) == 2

    def test_ghost_width_scales(self):
        raster = owners([[0, 1], [0, 1]])
        assert ghost_exchange_cells(raster, 2) == 2 * ghost_exchange_cells(raster, 1)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            ghost_exchange_cells(owners(np.zeros((2, 2))), -1)

    def test_checkerboard_worst_case(self):
        n = 4
        raster = owners(np.indices((n, n)).sum(axis=0) % 2)
        # Every interior face is a cut: 2*n*(n-1) faces, doubled.
        assert ghost_exchange_cells(raster) == 2 * 2 * n * (n - 1)


class TestMessagePairs:
    def test_two_halves_one_pair(self):
        raster = owners([[0, 0, 1, 1]] * 4).T
        assert ghost_message_pairs(raster) == 2  # one pair, both directions

    def test_three_stripes_two_pairs(self):
        raster = owners([[0] * 4, [1] * 4, [2] * 4])
        assert ghost_message_pairs(raster) == 4

    def test_uniform_zero(self):
        assert ghost_message_pairs(owners(np.ones((3, 3)))) == 0


class TestPerRankComm:
    def test_symmetric_split(self):
        raster = owners([[0, 0, 1, 1]] * 4).T
        counts = per_rank_comm_cells(raster, nprocs=2)
        assert counts.tolist() == [4, 4]

    def test_middle_rank_communicates_twice(self):
        raster = owners([[0] * 4, [1] * 4, [2] * 4])
        counts = per_rank_comm_cells(raster, nprocs=3)
        assert counts[1] == counts[0] + counts[2]


class TestInterlevel:
    def test_aligned_zero(self):
        coarse = owners([[0, 1], [0, 1]])
        fine = np.repeat(np.repeat(coarse, 2, 0), 2, 1)
        assert interlevel_transfer_cells(coarse, fine, 2) == 0

    def test_fully_mismatched(self):
        coarse = owners(np.zeros((2, 2)))
        fine = owners(np.ones((4, 4)))
        assert interlevel_transfer_cells(coarse, fine, 2) == 16

    def test_unrefined_fine_ignored(self):
        coarse = owners(np.zeros((2, 2)))
        fine = owners(np.full((4, 4), NO_OWNER))
        fine[0, 0] = 1
        assert interlevel_transfer_cells(coarse, fine, 2) == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            interlevel_transfer_cells(
                owners(np.zeros((2, 2))), owners(np.zeros((5, 5))), 2
            )

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            interlevel_transfer_cells(
                owners(np.zeros((2, 2))), owners(np.zeros((4, 4))), 0
            )


class TestBruteForce3D:
    """3-D metrics must agree with naive per-cell counting."""

    def test_ghost_exchange_and_pairs(self):
        rng = np.random.default_rng(11)
        raster = random_owners(rng, (6, 5, 4))
        faces = 0
        pairs: set[tuple[int, int]] = set()
        per_rank = np.zeros(5, dtype=np.int64)
        nx, ny, nz = raster.shape
        for i, j, k in itertools.product(range(nx), range(ny), range(nz)):
            a = raster[i, j, k]
            if a == NO_OWNER:
                continue
            for di, dj, dk in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
                ii, jj, kk = i + di, j + dj, k + dk
                if ii >= nx or jj >= ny or kk >= nz:
                    continue
                b = raster[ii, jj, kk]
                if b == NO_OWNER or b == a:
                    continue
                faces += 1
                pairs.add((min(a, b), max(a, b)))
                per_rank[a] += 1
                per_rank[b] += 1
        assert ghost_exchange_cells(raster, ghost_width=1) == 2 * faces
        assert ghost_message_pairs(raster) == 2 * len(pairs)
        np.testing.assert_array_equal(
            per_rank_comm_cells(raster, nprocs=5), per_rank
        )

    def test_interlevel_transfer(self):
        rng = np.random.default_rng(12)
        coarse = random_owners(rng, (3, 4, 2))
        fine = random_owners(rng, (6, 8, 4))
        expected = 0
        for i, j, k in itertools.product(range(6), range(8), range(4)):
            f = fine[i, j, k]
            c = coarse[i // 2, j // 2, k // 2]
            if f != NO_OWNER and c != NO_OWNER and f != c:
                expected += 1
        assert interlevel_transfer_cells(coarse, fine, 2) == expected

    def test_migration(self):
        rng = np.random.default_rng(13)
        shape0, shape1 = (3, 3, 3), (6, 6, 6)
        prev = PartitionResult(
            owners=(
                rng.integers(0, 4, size=shape0).astype(np.int32),
                random_owners(rng, shape1, nprocs=4),
            ),
            nprocs=4,
        )
        cur = PartitionResult(
            owners=(
                rng.integers(0, 4, size=shape0).astype(np.int32),
                random_owners(rng, shape1, nprocs=4),
            ),
            nprocs=4,
        )
        expected = 0
        for i, j, k in itertools.product(range(3), repeat=3):
            if cur.rasters()[0][i, j, k] != prev.rasters()[0][i, j, k]:
                expected += 1
        for i, j, k in itertools.product(range(6), repeat=3):
            b = cur.rasters()[1][i, j, k]
            if b == NO_OWNER:
                continue
            src = prev.rasters()[1][i, j, k]
            if src == NO_OWNER:
                src = prev.rasters()[0][i // 2, j // 2, k // 2]
            if src != b:
                expected += 1
        assert migration_cells(prev, cur) == expected


class TestMigration:
    def make_result(self, rasters, nprocs=4):
        return PartitionResult(
            owners=tuple(owners(r) for r in rasters), nprocs=nprocs
        )

    def test_identical_zero(self):
        base = np.zeros((4, 4))
        a = self.make_result([base])
        assert migration_cells(a, a) == 0

    def test_owner_change_counted(self):
        a = self.make_result([np.zeros((4, 4))])
        b = self.make_result([np.ones((4, 4))])
        assert migration_cells(a, b) == 16

    def test_new_fine_cells_fetch_from_parent(self):
        # Level 1 appears at t: all 4x4 fine cells interpolate from the
        # level-0 owner (0); new owner 1 => all 16 migrate.
        prev = self.make_result([np.zeros((2, 2))])
        cur = self.make_result([np.zeros((2, 2)), np.ones((4, 4))])
        assert migration_cells(prev, cur) == 16

    def test_new_fine_cells_local_parent_no_migration(self):
        prev = self.make_result([np.zeros((2, 2))])
        cur = self.make_result([np.zeros((2, 2)), np.zeros((4, 4))])
        assert migration_cells(prev, cur) == 0

    def test_persisting_fine_cell_prefers_own_old_owner(self):
        # Fine cell existed at t-1 with owner 1 and stays owner 1 at t,
        # while the parent belongs to rank 0: no migration (data is local).
        fine_prev = np.full((4, 4), NO_OWNER)
        fine_prev[:2, :2] = 1
        fine_cur = fine_prev.copy()
        prev = self.make_result([np.zeros((2, 2)), fine_prev])
        cur = self.make_result([np.zeros((2, 2)), fine_cur])
        assert migration_cells(prev, cur) == 0

    def test_deleted_levels_ignored(self):
        prev = self.make_result([np.zeros((2, 2)), np.zeros((4, 4))])
        cur = self.make_result([np.zeros((2, 2))])
        assert migration_cells(prev, cur) == 0

    def test_shape_mismatch_rejected(self):
        a = self.make_result([np.zeros((2, 2))])
        b = self.make_result([np.zeros((4, 4))])
        with pytest.raises(ValueError):
            migration_cells(a, b)

    def test_grandparent_fallback(self):
        # Level 2 is new and level 1 did not exist at t-1: data comes from
        # level 0 owners.
        prev = self.make_result([np.zeros((2, 2))])
        lvl1 = np.full((4, 4), np.int32(1))
        lvl2 = np.full((8, 8), np.int32(2))
        cur = self.make_result([np.zeros((2, 2)), lvl1, lvl2])
        # lvl1: 16 cells sourced from rank 0, owned by 1 -> 16.
        # lvl2: 64 cells sourced via lvl1's *source* (rank 0) ... but lvl1
        # exists at t? No: sources always come from the PREVIOUS
        # distribution; lvl1 didn't exist at t-1, so lvl2's source is the
        # upsampled level-0 owner (0), and its owner is 2 -> 64.
        assert migration_cells(prev, cur) == 16 + 64
