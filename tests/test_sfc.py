"""Tests for the Morton and Hilbert space-filling curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sfc import (
    hilbert_inverse,
    hilbert_inverse_nd,
    hilbert_key,
    hilbert_key_nd,
    max_order,
    morton_inverse,
    morton_inverse_nd,
    morton_key,
    morton_key_nd,
    sfc_order,
    sfc_order_nd,
)


coords = st.integers(min_value=0, max_value=(1 << 10) - 1)


class TestMorton:
    def test_known_values(self):
        # Interleaving: (x=1, y=0) -> 1; (x=0, y=1) -> 2; (x=1, y=1) -> 3.
        assert int(morton_key(np.array(1), np.array(0))) == 1
        assert int(morton_key(np.array(0), np.array(1))) == 2
        assert int(morton_key(np.array(1), np.array(1))) == 3
        assert int(morton_key(np.array(2), np.array(3))) == 14

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=50))
    def test_bijective(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        keys = morton_key(x, y, order=10)
        xi, yi = morton_inverse(keys)
        np.testing.assert_array_equal(xi, x)
        np.testing.assert_array_equal(yi, y)

    def test_full_grid_is_permutation(self):
        n = 16
        ix, iy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        keys = morton_key(ix.ravel(), iy.ravel(), order=4)
        assert len(np.unique(keys)) == n * n
        assert keys.max() == n * n - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_key(np.array([1 << 5]), np.array([0]), order=5)
        with pytest.raises(ValueError):
            morton_key(np.array([-1]), np.array([0]), order=5)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            morton_key(np.array([0]), np.array([0]), order=0)


class TestHilbert:
    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=50))
    def test_bijective(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        keys = hilbert_key(x, y, order=10)
        xi, yi = hilbert_inverse(keys, order=10)
        np.testing.assert_array_equal(xi, x)
        np.testing.assert_array_equal(yi, y)

    def test_full_grid_is_permutation(self):
        n = 16
        ix, iy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        keys = hilbert_key(ix.ravel(), iy.ravel(), order=4)
        assert len(np.unique(keys)) == n * n
        assert keys.max() == n * n - 1

    def test_adjacency(self):
        """Consecutive Hilbert cells are face neighbours (full locality)."""
        n = 32
        keys = np.arange(n * n, dtype=np.uint64)
        x, y = hilbert_inverse(keys, order=5)
        dist = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert (dist == 1).all()

    def test_morton_not_fully_adjacent(self):
        """Morton (partially ordered) has jumps — the contrast the paper draws."""
        n = 32
        keys = np.arange(n * n, dtype=np.uint64)
        x, y = morton_inverse(keys)
        dist = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert (dist > 1).any()

    def test_scalar_input(self):
        assert int(hilbert_key(np.array(0), np.array(0), order=4)) == 0


nd_coords = st.integers(min_value=0, max_value=(1 << 8) - 1)


class TestMortonNd:
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(
            st.tuples(nd_coords, nd_coords, nd_coords, nd_coords, nd_coords),
            min_size=1,
            max_size=40,
        ),
    )
    def test_bijective_any_dimension(self, ndim, pts):
        coords_nd = [np.array([p[d] for p in pts]) for d in range(ndim)]
        keys = morton_key_nd(coords_nd, order=8)
        inv = morton_inverse_nd(keys, ndim, order=8)
        for c, i in zip(coords_nd, inv):
            np.testing.assert_array_equal(i, c)

    def test_matches_2d_fast_path(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 1 << 10, size=200)
        y = rng.integers(0, 1 << 10, size=200)
        np.testing.assert_array_equal(
            morton_key_nd([x, y], order=10), morton_key(x, y, order=10)
        )

    def test_full_grid_is_permutation_3d(self):
        n = 8
        grids = np.indices((n, n, n)).reshape(3, -1)
        keys = morton_key_nd(list(grids), order=3)
        assert len(np.unique(keys)) == n**3
        assert keys.max() == n**3 - 1

    def test_order_limit_scales_with_ndim(self):
        assert max_order(2) == 31
        assert max_order(3) == 21
        with pytest.raises(ValueError):
            morton_key_nd([np.array([0])] * 3, order=22)


class TestHilbertNd:
    @given(
        st.integers(min_value=3, max_value=4),
        st.lists(
            st.tuples(nd_coords, nd_coords, nd_coords, nd_coords),
            min_size=1,
            max_size=40,
        ),
    )
    def test_bijective(self, ndim, pts):
        coords_nd = [np.array([p[d] for p in pts]) for d in range(ndim)]
        keys = hilbert_key_nd(coords_nd, order=8)
        inv = hilbert_inverse_nd(keys, ndim, order=8)
        for c, i in zip(coords_nd, inv):
            np.testing.assert_array_equal(i, c)

    def test_matches_2d_fast_path(self):
        rng = np.random.default_rng(4)
        x = rng.integers(0, 1 << 10, size=200)
        y = rng.integers(0, 1 << 10, size=200)
        np.testing.assert_array_equal(
            hilbert_key_nd([x, y], order=10), hilbert_key(x, y, order=10)
        )

    def test_full_grid_is_permutation_3d(self):
        n = 8
        grids = np.indices((n, n, n)).reshape(3, -1)
        keys = hilbert_key_nd(list(grids), order=3)
        assert len(np.unique(keys)) == n**3
        assert keys.max() == n**3 - 1

    def test_adjacency_3d(self):
        """Consecutive 3-D Hilbert cells are face neighbours."""
        n = 16
        keys = np.arange(n**3, dtype=np.uint64)
        x, y, z = hilbert_inverse_nd(keys, 3, order=4)
        dist = np.abs(np.diff(x)) + np.abs(np.diff(y)) + np.abs(np.diff(z))
        assert (dist == 1).all()

    def test_morton_3d_not_fully_adjacent(self):
        n = 16
        keys = np.arange(n**3, dtype=np.uint64)
        x, y, z = morton_inverse_nd(keys, 3, order=4)
        dist = np.abs(np.diff(x)) + np.abs(np.diff(y)) + np.abs(np.diff(z))
        assert (dist > 1).any()


class TestSfcOrderNd:
    def test_orders_all_elements_3d(self):
        rng = np.random.default_rng(2)
        coords_3d = [rng.integers(0, 32, size=80) for _ in range(3)]
        for curve in ("hilbert", "morton"):
            order = sfc_order_nd(coords_3d, curve=curve, order=5)
            assert sorted(order.tolist()) == list(range(80))

    def test_2d_wrapper_equivalence(self):
        rng = np.random.default_rng(6)
        x = rng.integers(0, 64, size=100)
        y = rng.integers(0, 64, size=100)
        for curve in ("hilbert", "morton"):
            np.testing.assert_array_equal(
                sfc_order(x, y, curve=curve, order=6),
                sfc_order_nd([x, y], curve=curve, order=6),
            )


class TestSfcOrder:
    def test_orders_all_elements(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 64, size=100)
        y = rng.integers(0, 64, size=100)
        for curve in ("hilbert", "morton"):
            order = sfc_order(x, y, curve=curve, order=6)
            assert sorted(order.tolist()) == list(range(100))

    def test_unknown_curve(self):
        with pytest.raises(ValueError, match="unknown curve"):
            sfc_order(np.array([0]), np.array([0]), curve="peano")

    def test_hilbert_locality_beats_morton(self):
        """Mean jump distance along the curve: Hilbert <= Morton."""
        n = 32
        ix, iy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        x, y = ix.ravel(), iy.ravel()

        def mean_jump(curve):
            order = sfc_order(x, y, curve=curve, order=5)
            xs, ys = x[order], y[order]
            return (np.abs(np.diff(xs)) + np.abs(np.diff(ys))).mean()

        assert mean_jump("hilbert") <= mean_jump("morton")
