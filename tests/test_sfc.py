"""Tests for the Morton and Hilbert space-filling curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import (
    hilbert_inverse,
    hilbert_key,
    morton_inverse,
    morton_key,
    sfc_order,
)


coords = st.integers(min_value=0, max_value=(1 << 10) - 1)


class TestMorton:
    def test_known_values(self):
        # Interleaving: (x=1, y=0) -> 1; (x=0, y=1) -> 2; (x=1, y=1) -> 3.
        assert int(morton_key(np.array(1), np.array(0))) == 1
        assert int(morton_key(np.array(0), np.array(1))) == 2
        assert int(morton_key(np.array(1), np.array(1))) == 3
        assert int(morton_key(np.array(2), np.array(3))) == 14

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=50))
    def test_bijective(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        keys = morton_key(x, y, order=10)
        xi, yi = morton_inverse(keys)
        np.testing.assert_array_equal(xi, x)
        np.testing.assert_array_equal(yi, y)

    def test_full_grid_is_permutation(self):
        n = 16
        ix, iy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        keys = morton_key(ix.ravel(), iy.ravel(), order=4)
        assert len(np.unique(keys)) == n * n
        assert keys.max() == n * n - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_key(np.array([1 << 5]), np.array([0]), order=5)
        with pytest.raises(ValueError):
            morton_key(np.array([-1]), np.array([0]), order=5)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            morton_key(np.array([0]), np.array([0]), order=0)


class TestHilbert:
    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=50))
    def test_bijective(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        keys = hilbert_key(x, y, order=10)
        xi, yi = hilbert_inverse(keys, order=10)
        np.testing.assert_array_equal(xi, x)
        np.testing.assert_array_equal(yi, y)

    def test_full_grid_is_permutation(self):
        n = 16
        ix, iy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        keys = hilbert_key(ix.ravel(), iy.ravel(), order=4)
        assert len(np.unique(keys)) == n * n
        assert keys.max() == n * n - 1

    def test_adjacency(self):
        """Consecutive Hilbert cells are face neighbours (full locality)."""
        n = 32
        keys = np.arange(n * n, dtype=np.uint64)
        x, y = hilbert_inverse(keys, order=5)
        dist = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert (dist == 1).all()

    def test_morton_not_fully_adjacent(self):
        """Morton (partially ordered) has jumps — the contrast the paper draws."""
        n = 32
        keys = np.arange(n * n, dtype=np.uint64)
        x, y = morton_inverse(keys)
        dist = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert (dist > 1).any()

    def test_scalar_input(self):
        assert int(hilbert_key(np.array(0), np.array(0), order=4)) == 0


class TestSfcOrder:
    def test_orders_all_elements(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 64, size=100)
        y = rng.integers(0, 64, size=100)
        for curve in ("hilbert", "morton"):
            order = sfc_order(x, y, curve=curve, order=6)
            assert sorted(order.tolist()) == list(range(100))

    def test_unknown_curve(self):
        with pytest.raises(ValueError, match="unknown curve"):
            sfc_order(np.array([0]), np.array([0]), curve="peano")

    def test_hilbert_locality_beats_morton(self):
        """Mean jump distance along the curve: Hilbert <= Morton."""
        n = 32
        ix, iy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        x, y = ix.ravel(), iy.ravel()

        def mean_jump(curve):
            order = sfc_order(x, y, curve=curve, order=5)
            xs, ys = x[order], y[order]
            return (np.abs(np.diff(xs)) + np.abs(np.diff(ys))).mean()

        assert mean_jump("hilbert") <= mean_jump("morton")
