"""Tests for the machine model and the trace-driven execution simulator."""

from __future__ import annotations

import pytest

from repro.partition import (
    DomainSfcPartitioner,
    NaturePlusFable,
    PatchBasedPartitioner,
)
from repro.simulator import MachineModel, TraceSimulator


class TestMachineModel:
    def test_defaults_positive(self):
        m = MachineModel()
        assert m.compute_seconds(1000) > 0
        assert m.transfer_seconds(1000, 2) > 0

    def test_transfer_includes_latency(self):
        m = MachineModel()
        assert m.transfer_seconds(0, 1) == pytest.approx(m.latency_seconds)

    def test_faster_network(self):
        m = MachineModel()
        f = m.faster_network(10)
        assert f.bandwidth_bytes_per_s == pytest.approx(
            10 * m.bandwidth_bytes_per_s
        )
        assert f.transfer_seconds(1e6) < m.transfer_seconds(1e6)

    def test_faster_cpu(self):
        m = MachineModel()
        f = m.faster_cpu(4)
        assert f.compute_seconds(1e6) == pytest.approx(m.compute_seconds(1e6) / 4)

    @pytest.mark.parametrize("field", [
        "seconds_per_cell_step", "bytes_per_cell", "bandwidth_bytes_per_s",
        "latency_seconds", "sync_seconds",
    ])
    def test_validation(self, field):
        with pytest.raises(ValueError):
            MachineModel(**{field: 0.0})

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            MachineModel().faster_network(0)
        with pytest.raises(ValueError):
            MachineModel().faster_cpu(-1)


class TestTraceSimulator:
    def test_run_produces_metrics_per_snapshot(self, small_traces):
        sim = TraceSimulator()
        res = sim.run(small_traces["bl2d"], NaturePlusFable(), 4)
        assert len(res.steps) == len(small_traces["bl2d"])
        assert res.nprocs == 4
        assert res.trace_name == "bl2d"

    def test_first_step_no_migration(self, small_traces):
        sim = TraceSimulator()
        res = sim.run(small_traces["tp2d"], NaturePlusFable(), 4)
        assert res.steps[0].migration_cells == 0
        assert res.steps[0].relative_migration == 0.0

    def test_metrics_ranges(self, small_traces):
        sim = TraceSimulator()
        res = sim.run(small_traces["sc2d"], DomainSfcPartitioner(), 4)
        for s in res.steps:
            assert s.load_imbalance >= 1.0
            assert s.relative_comm >= 0.0
            assert s.relative_migration >= 0.0
            assert s.total_seconds > 0.0
            assert s.ncells > 0

    def test_single_proc_no_comm_no_migration(self, small_traces):
        sim = TraceSimulator()
        res = sim.run(small_traces["sc2d"], NaturePlusFable(), 1)
        for s in res.steps:
            assert s.comm_cells == 0
            assert s.interlevel_cells == 0
            assert s.migration_cells == 0
            assert s.load_imbalance == pytest.approx(1.0)

    def test_domain_based_zero_interlevel(self, small_traces):
        """Strictly domain-based partitioning eliminates inter-level comm."""
        sim = TraceSimulator()
        res = sim.run(small_traces["sc2d"], DomainSfcPartitioner(unit_size=1), 4)
        for s in res.steps:
            assert s.interlevel_cells == 0

    def test_patch_based_has_interlevel(self):
        """Per-level patch distribution splits parents from children."""
        from repro.geometry import Box
        from repro.hierarchy import GridHierarchy, PatchLevel

        domain = Box((0, 0), (8, 8))
        h = GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(
                    1,
                    [Box((0, 0), (8, 8)), Box((8, 8), (16, 16))],
                    ratio=2,
                ),
            ],
        )
        res = PatchBasedPartitioner(strategy="round-robin").partition(h, 2)
        sim = TraceSimulator()
        step = sim.measure_step(h, res, None, None)
        assert step.interlevel_cells > 0

    def test_series_extraction(self, small_traces):
        sim = TraceSimulator()
        res = sim.run(small_traces["bl2d"], NaturePlusFable(), 4)
        arr = res.series("relative_comm")
        assert arr.shape == (len(res.steps),)
        assert (arr >= 0).all()

    def test_total_execution_time_sums(self, small_traces):
        sim = TraceSimulator()
        res = sim.run(small_traces["bl2d"], NaturePlusFable(), 4)
        assert res.total_execution_seconds == pytest.approx(
            sum(s.total_seconds for s in res.steps)
        )

    def test_summary_keys(self, small_traces):
        sim = TraceSimulator()
        res = sim.run(small_traces["bl2d"], NaturePlusFable(), 4)
        summary = res.summary()
        for key in (
            "trace",
            "partitioner",
            "nprocs",
            "mean_imbalance",
            "mean_relative_comm",
            "mean_relative_migration",
            "total_seconds",
        ):
            assert key in summary

    def test_faster_network_reduces_total_time(self, small_traces):
        slow = TraceSimulator(machine=MachineModel())
        fast = TraceSimulator(machine=MachineModel().faster_network(100))
        p = NaturePlusFable()
        t_slow = slow.run(small_traces["sc2d"], p, 4).total_execution_seconds
        t_fast = fast.run(small_traces["sc2d"], p, 4).total_execution_seconds
        assert t_fast <= t_slow

    def test_run_scheduled_switches_partitioners(self, small_traces):
        sim = TraceSimulator()
        picks = []

        def schedule(i, snap, prev):
            p = NaturePlusFable() if i % 2 == 0 else DomainSfcPartitioner()
            picks.append(p.name)
            return p

        res = sim.run_scheduled(small_traces["bl2d"], schedule, 4)
        assert len(res.steps) == len(small_traces["bl2d"])
        assert "nature+fable" in picks and "domain-sfc" in picks
        assert res.partitioner["name"] == "scheduled"

    def test_param_validation(self):
        with pytest.raises(ValueError):
            TraceSimulator(ghost_width=-1)
        with pytest.raises(ValueError):
            TraceSimulator(steps_per_snapshot=0)

    def test_nprocs_validation(self, small_traces):
        with pytest.raises(ValueError):
            TraceSimulator().run(small_traces["bl2d"], NaturePlusFable(), 0)
