"""Tests for the meta-partitioner, the ArMADA baseline and the timer."""

from __future__ import annotations

import pytest

from repro.meta import (
    ArmadaClassifier,
    InvocationTimer,
    MetaPartitioner,
    MetaPolicy,
    MetaScheduler,
    armada_octant_table,
)
from repro.model import ClassificationPoint, StateSampler
from repro.partition import (
    DomainSfcPartitioner,
    NaturePlusFable,
    PatchBasedPartitioner,
    StickyRepartitioner,
)
from repro.simulator import TraceSimulator


class TestInvocationTimer:
    def test_intervals_recorded(self):
        clock_values = iter([0.0, 1.0, 3.5])
        timer = InvocationTimer(clock=lambda: next(clock_values))
        assert timer.tick() is None
        assert timer.tick() == pytest.approx(1.0)
        assert timer.tick() == pytest.approx(2.5)
        assert timer.intervals == (1.0, 2.5)

    def test_mean_interval_window(self):
        clock_values = iter([0.0, 1.0, 2.0, 10.0])
        timer = InvocationTimer(clock=lambda: next(clock_values))
        for _ in range(4):
            timer.tick()
        assert timer.mean_interval() == pytest.approx((1 + 1 + 8) / 3)
        assert timer.mean_interval(window=1) == pytest.approx(8.0)

    def test_mean_before_any_interval(self):
        timer = InvocationTimer(clock=lambda: 0.0)
        assert timer.mean_interval() is None

    def test_backwards_clock_rejected(self):
        clock_values = iter([1.0, 0.5])
        timer = InvocationTimer(clock=lambda: next(clock_values))
        timer.tick()
        with pytest.raises(ValueError, match="backwards"):
            timer.tick()

    def test_reset(self):
        clock_values = iter([0.0, 1.0, 5.0])
        timer = InvocationTimer(clock=lambda: next(clock_values))
        timer.tick()
        timer.tick()
        timer.reset()
        assert timer.intervals == ()
        assert timer.tick() is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            InvocationTimer(clock=lambda: 0.0).mean_interval(window=0)


class TestMetaPolicy:
    def test_defaults_valid(self):
        MetaPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim1_low": 0.8, "dim1_high": 0.2},
            {"dim2_speed": 1.5},
            {"dim3_sticky": -0.1},
            {"sticky_tolerance": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MetaPolicy(**kwargs)


class TestMetaPartitionerRules:
    def select(self, dim1, dim2, dim3):
        return MetaPartitioner().select(ClassificationPoint(dim1, dim2, dim3))

    def test_comm_dominated_gets_domain_based(self):
        p = self.select(0.2, 0.2, 0.1)
        assert isinstance(p, DomainSfcPartitioner)
        assert p.curve == "hilbert"  # time is ample -> quality curve

    def test_comm_dominated_fast_gets_morton(self):
        p = self.select(0.2, 0.9, 0.1)
        assert isinstance(p, DomainSfcPartitioner)
        assert p.curve == "morton"
        assert not p.exact

    def test_balance_dominated_gets_patch_based(self):
        p = self.select(0.97, 0.2, 0.1)
        assert isinstance(p, PatchBasedPartitioner)
        assert p.strategy == "lpt"

    def test_middle_gets_hybrid(self):
        p = self.select(0.93, 0.9, 0.1)
        assert isinstance(p, NaturePlusFable)

    def test_high_migration_wraps_sticky(self):
        p = self.select(0.93, 0.5, 0.9)
        assert isinstance(p, StickyRepartitioner)
        # Budget shrinks as dim3 grows.
        q = self.select(0.93, 0.5, 0.5)
        assert isinstance(q, StickyRepartitioner)
        assert p.migration_budget <= q.migration_budget

    def test_sticky_can_be_gated_off(self):
        meta = MetaPartitioner()
        point = ClassificationPoint(0.93, 0.5, 0.9)
        p = meta.select(point, sticky_ok=False)
        assert not isinstance(p, StickyRepartitioner)

    def test_low_migration_unwrapped(self):
        p = self.select(0.93, 0.5, 0.1)
        assert not isinstance(p, StickyRepartitioner)


class TestMetaScheduler:
    def test_classify_produces_history(self, small_traces):
        sched = MetaScheduler(sampler=StateSampler(nprocs=4))
        for snap in small_traces["sc2d"]:
            sched.classify(snap.hierarchy)
        assert len(sched.history) == len(small_traces["sc2d"])
        assert sched.history[0].dim3 == 0.0  # no predecessor

    def test_matches_batch_sampler(self, small_traces):
        """Incremental classification equals the batch StateSampler."""
        sampler = StateSampler(nprocs=4)
        batch = sampler.sample_trace(small_traces["bl2d"])
        sched = MetaScheduler(sampler=StateSampler(nprocs=4))
        for snap, expected in zip(small_traces["bl2d"], batch):
            point = sched.classify(snap.hierarchy)
            assert point.dim1 == pytest.approx(expected.point.dim1)
            assert point.dim2 == pytest.approx(expected.point.dim2)
            assert point.dim3 == pytest.approx(expected.point.dim3)

    def test_reset(self, small_traces):
        sched = MetaScheduler(sampler=StateSampler(nprocs=4))
        sched.classify(small_traces["bl2d"][0].hierarchy)
        sched.reset()
        assert sched.history == []

    def test_full_scheduled_run(self, small_traces):
        sim = TraceSimulator()
        sched = MetaScheduler(sampler=StateSampler(nprocs=4))
        res = sim.run_scheduled(small_traces["sc2d"], sched, 4)
        assert len(res.steps) == len(small_traces["sc2d"])
        assert res.total_execution_seconds > 0


class TestArmada:
    def test_octant_table_covers_all(self):
        for octant in range(8):
            p = armada_octant_table(octant)
            assert hasattr(p, "partition")

    def test_octant_table_validation(self):
        with pytest.raises(ValueError):
            armada_octant_table(8)

    def test_comm_dominated_bit_maps_to_domain_based(self):
        p = armada_octant_table(2)
        assert isinstance(p, DomainSfcPartitioner)

    def test_localized_computation_maps_to_patch_based(self):
        p = armada_octant_table(1)
        assert isinstance(p, PatchBasedPartitioner)

    def test_dynamic_bit_wraps_sticky(self):
        p = armada_octant_table(4)
        assert isinstance(p, StickyRepartitioner)

    def test_classifier_stateful(self, small_traces):
        clf = ArmadaClassifier()
        octants = [clf.classify(s.hierarchy) for s in small_traces["sc2d"]]
        assert len(octants) == len(small_traces["sc2d"])
        assert all(0 <= o < 8 for o in octants)
        assert clf.history == octants

    def test_classifier_reset(self, small_traces):
        clf = ArmadaClassifier()
        clf.classify(small_traces["sc2d"][0].hierarchy)
        clf.reset()
        assert clf.history == []

    def test_hysteresis_dampens_flips(self, small_traces):
        """Higher hysteresis never produces more octant transitions."""
        def transitions(h):
            clf = ArmadaClassifier(hysteresis=h)
            octants = [clf.classify(s.hierarchy) for s in small_traces["sc2d"]]
            return sum(a != b for a, b in zip(octants, octants[1:]))

        assert transitions(0.5) <= transitions(0.0)

    def test_schedule_interface(self, small_traces):
        sim = TraceSimulator()
        res = sim.run_scheduled(small_traces["bl2d"], ArmadaClassifier(), 4)
        assert len(res.steps) == len(small_traces["bl2d"])

    def test_hysteresis_validation(self):
        with pytest.raises(ValueError):
            ArmadaClassifier(hysteresis=-0.5)
