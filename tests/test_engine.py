"""Tests for the experiment engine: specs, store, executor, CLI.

Covers the engine contract end to end: content-hash stability (within
and across processes), store round trips, parallel results bit-identical
to serial, resume-after-partial-sweep hitting the store instead of
recomputing, the disk-backed trace cache, and ``python -m repro`` smoke
tests.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    ResultStore,
    RunSpec,
    default_store,
    penalties_spec,
    plan_specs,
    run_spec,
    run_specs,
    shard_specs,
    sim_spec,
    trace_spec,
)
from repro.engine import executor as executor_module
from repro.experiments import clear_trace_cache, paper_trace
from repro.experiments.workloads import _cached_trace

NPROCS = 4


def _cli_env(tmp_path: Path) -> dict:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cli-store")
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _cli(args: list[str], tmp_path: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=_cli_env(tmp_path),
    )


class TestSpecHash:
    def test_key_is_hex_sha256(self):
        key = sim_spec("bl2d", "small").key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_key_ignores_param_order(self):
        a = sim_spec("bl2d", "small", partitioner="patch-lpt",
                     params={"strategy": "lpt", "split_oversized": True})
        b = sim_spec("bl2d", "small", partitioner="patch-lpt",
                     params={"split_oversized": True, "strategy": "lpt"})
        assert a.key() == b.key()

    def test_key_distinguishes_jobs(self):
        base = sim_spec("bl2d", "small", nprocs=4)
        assert base.key() != sim_spec("tp2d", "small", nprocs=4).key()
        assert base.key() != sim_spec("bl2d", "paper", nprocs=4).key()
        assert base.key() != sim_spec("bl2d", "small", nprocs=8).key()
        assert base.key() != sim_spec(
            "bl2d", "small", nprocs=4, partitioner="patch-lpt"
        ).key()
        assert base.key() != penalties_spec("bl2d", "small", nprocs=4).key()
        assert base.key() != trace_spec("bl2d", "small").key()

    def test_named_machine_hashes_like_explicit_params(self):
        from dataclasses import asdict

        from repro.engine import resolve_machine

        named = sim_spec("bl2d", "small", machine="net-starved")
        explicit = sim_spec(
            "bl2d", "small", machine=asdict(resolve_machine("net-starved"))
        )
        assert named.key() == explicit.key()

    def test_key_stable_across_processes(self):
        spec = sim_spec("bl2d", "small", nprocs=4, machine="net-starved")
        code = (
            "from repro.engine import sim_spec;"
            "print(sim_spec('bl2d','small',nprocs=4,machine='net-starved')"
            ".key())"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"  # must not leak into content hashes
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == spec.key()

    def test_json_round_trip(self):
        spec = sim_spec(
            "tp3d", "small", nprocs=8, partitioner="domain-sfc-morton",
            params={"unit_size": 4}, machine="fast-network", seed=7,
        )
        again = RunSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert again == spec
        assert again.key() == spec.key()

    def test_validation(self):
        with pytest.raises(ValueError):
            sim_spec("nope2d", "small")
        with pytest.raises(ValueError):
            sim_spec("bl2d", "huge")
        with pytest.raises(ValueError):
            sim_spec("bl2d", "small", partitioner="magic")
        with pytest.raises(ValueError):
            sim_spec("bl2d", "small", nprocs=0)
        with pytest.raises(ValueError):
            penalties_spec("bl2d", "small", migration_denominator="median")
        with pytest.raises(ValueError, match="schedule"):
            sim_spec("bl2d", "small", partitioner="meta-partitioner",
                     params={"bogus": 1})

    def test_ndim_filled_from_registry(self):
        assert sim_spec("bl2d", "small").ndim == 2
        assert sim_spec("bl3d", "small").ndim == 3

    def test_seed_rejected_for_seedless_kernel(self):
        # sc2d's constructor takes no seed; fail at spec time, not in a
        # worker's TypeError.
        with pytest.raises(ValueError, match="seed"):
            sim_spec("sc2d", "small", seed=7)
        with pytest.raises(ValueError, match="seed"):
            paper_trace("sc2d", "small", seed=7)


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = sim_spec("bl2d", "small", nprocs=NPROCS)
        assert store.get_result(spec) is None
        result = run_spec(spec, store=store)
        assert store.has(result.key)
        again = store.get_result(spec)
        assert again.meta == result.meta
        assert set(again.arrays) == set(result.arrays)
        for name in result.arrays:
            assert np.array_equal(again.arrays[name], result.arrays[name])
            assert again.arrays[name].dtype == result.arrays[name].dtype

    def test_entries_and_clear(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_spec(sim_spec("bl2d", "small", nprocs=NPROCS), store=store)
        run_spec(penalties_spec("bl2d", "small", nprocs=NPROCS), store=store)
        kinds = sorted(doc["kind"] for doc in store.entries())
        # The sim and penalties entries plus the shared trace artifact.
        assert kinds == ["penalties", "sim", "trace"]
        assert store.clear(kind="sim") == 1
        assert sorted(d["kind"] for d in store.entries()) == ["penalties", "trace"]
        assert store.clear() == 2
        assert list(store.entries()) == []

    def test_default_store_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_store().root == tmp_path / "custom"

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.has("../escape")


class TestExecutor:
    def _sweep(self):
        return [
            sim_spec(app, "small", nprocs=NPROCS, partitioner=part)
            for app in ("bl2d", "tp2d")
            for part in ("nature+fable", "domain-sfc-hilbert")
        ]

    def test_parallel_bit_identical_to_serial(self, tmp_path):
        specs = self._sweep()
        serial = run_specs(specs, n_jobs=1, store=ResultStore(tmp_path / "a"))
        parallel = run_specs(specs, n_jobs=2, store=ResultStore(tmp_path / "b"))
        assert len(serial) == len(parallel) == len(specs)
        for ser, par in zip(serial, parallel):
            assert ser.key == par.key
            assert ser.meta == par.meta
            assert set(ser.arrays) == set(par.arrays)
            for name in ser.arrays:
                assert np.array_equal(ser.arrays[name], par.arrays[name])
                assert ser.arrays[name].dtype == par.arrays[name].dtype

    def test_results_in_submission_order_with_duplicates(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = self._sweep()
        submitted = [specs[2], specs[0], specs[2]]
        results = run_specs(submitted, store=store)
        assert [r.key for r in results] == [s.key() for s in submitted]
        assert results[0] is results[2]  # duplicates share one result

    def test_resume_hits_store_instead_of_recomputing(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        specs = self._sweep()
        run_specs(specs[:2], n_jobs=1, store=store)  # partial sweep, then "killed"
        computed: list[str] = []
        real_execute = executor_module.execute

        def counting_execute(spec, store=None):
            computed.append(spec.label())
            return real_execute(spec, store)

        monkeypatch.setattr(executor_module, "execute", counting_execute)
        results = run_specs(specs, n_jobs=1, store=store)  # resumed sweep
        assert len(results) == len(specs)
        # The DAG schedules the missing tp2d trace first (its own layer),
        # then the two missing sims; the bl2d half resolves in the store.
        assert computed == ["trace:tp2d:small"] + [
            s.label() for s in specs[2:]
        ]

    def test_plan_specs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = self._sweep()
        run_spec(specs[0], store=store)
        unique, missing = plan_specs(specs + specs[:1], store)
        assert unique == specs
        assert missing == specs[1:]

    def test_shard_specs_keeps_workloads_together(self):
        specs = self._sweep()
        shards = shard_specs(specs, 2)
        assert sorted(s.key() for shard in shards for s in shard) == sorted(
            s.key() for s in specs
        )
        for shard in shards:
            assert len({(s.app, s.scale) for s in shard}) == 1

    def test_shard_specs_splits_single_workload_sweeps(self):
        # One app, many partitioners: n_jobs must still parallelize.
        specs = [
            sim_spec("bl2d", "small", nprocs=NPROCS, partitioner=p)
            for p in ("nature+fable", "patch-lpt", "domain-sfc-hilbert",
                      "domain-sfc-morton", "sticky-sfc", "armada-octant")
        ]
        shards = shard_specs(specs, 2)
        assert len(shards) == 2
        assert sorted(len(s) for s in shards) == [3, 3]

    def test_force_recomputes(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        spec = self._sweep()[0]
        run_spec(spec, store=store)
        computed = []
        real_execute = executor_module.execute
        monkeypatch.setattr(
            executor_module,
            "execute",
            lambda s, st=None: (computed.append(s.label()),
                                real_execute(s, st))[1],
        )
        run_specs([spec], store=store, force=True)
        assert computed == [spec.label()]

    def test_force_replaces_stale_store_entry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = self._sweep()[0]
        good = run_spec(spec, store=store)
        # Corrupt the stored summary, then force: the fresh result must
        # replace the stale entry on disk and be what the caller gets.
        meta_path = store.entry_dir(good.key) / "meta.json"
        doc = json.loads(meta_path.read_text())
        doc["meta"]["total_execution_seconds"] = -999.0
        meta_path.write_text(json.dumps(doc))
        fresh = run_spec(spec, store=store, force=True)
        assert fresh.meta["total_execution_seconds"] == pytest.approx(
            good.meta["total_execution_seconds"]
        )
        assert store.get_result(spec).meta == fresh.meta

    def test_force_trace_regenerates_artifact(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = trace_spec("bl2d", "small")
        run_spec(spec, store=store)
        run_spec(spec, store=store, force=True)
        # The trace artifact must survive a forced re-run.
        assert store.get_trace(spec) is not None

    def test_schedule_spec_runs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = run_spec(
            sim_spec(
                "bl2d", "small", nprocs=NPROCS, partitioner="meta-partitioner"
            ),
            store=store,
        )
        assert result.meta["partitioner"]["name"] == "scheduled"
        assert result.meta["total_execution_seconds"] > 0


class TestTraceCache:
    def test_disk_cache_survives_memory_clear(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "traces")
        trace = paper_trace("bl2d", "small", store=store)
        clear_trace_cache(store=store, memory_only=True)
        # Break generation: a reload must come from the disk artifact.
        monkeypatch.setattr(
            "repro.experiments.workloads._generate",
            lambda *a: pytest.fail("trace regenerated despite disk cache"),
        )
        reloaded = paper_trace("bl2d", "small", store=store)
        assert reloaded.name == trace.name
        assert reloaded.hierarchies() == trace.hierarchies()
        assert [s.time for s in reloaded] == [s.time for s in trace]

    def test_clear_trace_cache_removes_disk_entries(self, tmp_path):
        store = ResultStore(tmp_path / "traces")
        paper_trace("bl2d", "small", store=store)
        paper_trace("tp2d", "small", store=store)
        assert clear_trace_cache(store=store) == 2
        assert list(store.entries()) == []

    def test_memo_returns_same_object(self, tmp_path):
        store = ResultStore(tmp_path / "traces")
        assert paper_trace("bl2d", "small", store=store) is paper_trace(
            "bl2d", "small", store=store
        )

    def test_seed_override_changes_trace_key(self):
        assert (
            trace_spec("bl2d", "small").key()
            != trace_spec("bl2d", "small", seed=7).key()
        )


@pytest.fixture(autouse=True)
def _fresh_trace_memo():
    """Each test sees a cold in-process memo (stores are per-test tmp dirs)."""
    _cached_trace.cache_clear()
    yield


class TestCli:
    def test_sweep_serial_then_parallel_resume(self, tmp_path):
        args = [
            "sweep", "--scale", "small", "--apps", "bl2d",
            "--partitioners", "nature+fable,patch-lpt",
            "--nprocs", str(NPROCS),
        ]
        cold = _cli(args + ["--n-jobs", "2"], tmp_path)
        assert cold.returncode == 0, cold.stderr
        assert "2 to compute" in cold.stdout
        assert "bl2d" in cold.stdout and "patch-lpt" in cold.stdout
        warm = _cli(args + ["--n-jobs", "1"], tmp_path)
        assert warm.returncode == 0, warm.stderr
        assert "0 to compute" in warm.stdout
        # The rendered result tables must match exactly, cold or warm.
        table = lambda out: [  # noqa: E731
            line for line in out.splitlines() if line.startswith("bl2d")
        ]
        assert table(cold.stdout) == table(warm.stdout)
        assert len(table(cold.stdout)) == 2

    def test_run_and_cache_roundtrip(self, tmp_path):
        run = _cli(
            ["run", "--app", "bl2d", "--scale", "small", "--nprocs",
             str(NPROCS), "--json"],
            tmp_path,
        )
        assert run.returncode == 0, run.stderr
        doc = json.loads(run.stdout)
        assert doc["meta"]["trace"] == "bl2d"
        ls = _cli(["cache", "ls"], tmp_path)
        assert ls.returncode == 0, ls.stderr
        assert "2 entries" in ls.stdout  # the sim result + its trace
        clear = _cli(["cache", "clear"], tmp_path)
        assert clear.returncode == 0
        assert "removed 2 entries" in clear.stdout

    def test_report_smoke(self, tmp_path):
        out = _cli(
            ["report", "--figures", "1,5", "--scale", "small",
             "--nprocs", str(NPROCS), "--quiet"],
            tmp_path,
        )
        assert out.returncode == 0, out.stderr
        assert "Figure 1" in out.stdout
        assert "Figure 5" in out.stdout
        assert "beta_C" in out.stdout

    def test_unknown_app_fails_cleanly(self, tmp_path):
        out = _cli(["sweep", "--apps", "warp9", "--scale", "small"], tmp_path)
        assert out.returncode != 0
        assert "unknown app" in out.stderr

    def test_spec_validation_error_is_not_a_traceback(self, tmp_path):
        out = _cli(
            ["run", "--app", "sc2d", "--scale", "small", "--seed", "5"],
            tmp_path,
        )
        assert out.returncode == 2
        assert "error:" in out.stderr
        assert "Traceback" not in out.stderr
