"""The sweep warehouse: flatten, ingest, repair, query, CLI surfaces."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.engine import (
    ResultStore,
    RunResult,
    penalties_spec,
    run_spec,
    sim_spec,
    trace_spec,
)
from repro.warehouse import (
    PARTITION_COLUMNS,
    WAREHOUSE_SCHEMA_VERSION,
    NpzColumnFormat,
    Warehouse,
    flatten_run,
    group_stats,
    parquet_available,
    partition_path,
    partition_values,
    render_build_plan,
    resolve_format,
    scan,
    scan_table,
)

NPROCS = 4


def _store(root: Path) -> ResultStore:
    return ResultStore(root / "store")


def _seed_runs(store, apps=("bl2d",), partitioners=("nature+fable",)):
    """Compute a small grid into ``store``; returns the RunResults."""
    results = []
    for app in apps:
        for part in partitioners:
            results.append(run_spec(
                sim_spec(app, "small", nprocs=NPROCS, partitioner=part),
                store=store,
            ))
        results.append(run_spec(
            penalties_spec(app, "small", nprocs=NPROCS), store=store
        ))
    return results


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """A store with two apps x two partitioners, fully ingested."""
    tmp = tmp_path_factory.mktemp("warehouse-warm")
    store = _store(tmp)
    results = _seed_runs(
        store, apps=("bl2d", "sc2d"),
        partitioners=("nature+fable", "patch-lpt"),
    )
    wh = Warehouse(tmp / "wh")
    report = wh.build(store)
    return store, wh, results, report


class TestFlatten:
    def test_sim_runs_row_and_steps(self, warm):
        store, wh, results, _ = warm
        sim = next(r for r in results if r.spec.kind == "sim")
        flat = flatten_run(sim)
        row = flat.runs_row
        assert row["key"] == sim.key
        assert row["kind"] == "sim"
        assert row["app"] == sim.spec.app
        assert row["scale"] == "small"
        assert row["nprocs"] == NPROCS
        assert row["partitioner"] == sim.spec.partitioner
        assert row["n_steps"] == sim.arrays["step"].size
        assert row["trace"] == sim.meta["trace"]
        # Resolved machine parameters become machine_<field> columns.
        assert row["machine_bandwidth_bytes_per_s"] > 0
        # Scalar summaries flatten by underscore path.
        assert row["summary_mean_relative_comm"] == pytest.approx(
            sim.meta["summary"]["mean_relative_comm"]
        )
        assert flat.partition == partition_values(sim.spec)
        for name, arr in sim.arrays.items():
            assert flat.steps[name].dtype == arr.dtype
            assert np.array_equal(flat.steps[name], arr, equal_nan=True)
        assert np.array_equal(
            flat.steps["step_index"], np.arange(flat.n_steps)
        )

    def test_penalties_partition_uses_kind(self, warm):
        store, wh, results, _ = warm
        pen = next(r for r in results if r.spec.kind == "penalties")
        values = partition_values(pen.spec)
        assert values["partitioner"] == "penalties"
        assert partition_path(values).endswith("partitioner=penalties")

    def test_trace_kind_rejected(self, tmp_path):
        store = _store(tmp_path)
        spec = trace_spec("bl2d", "small")
        run_spec(spec, store=store)
        result = store.get_result(spec)
        with pytest.raises(ValueError, match="cannot flatten"):
            flatten_run(result)

    def test_partition_path_rejects_separator_values(self):
        with pytest.raises(ValueError, match="hive directory"):
            partition_path(
                {"app": "a/b", "scale": "small", "partitioner": "p"}
            )


_COLUMN_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32, np.uint16, np.bool_]
)


def _column(data, dtype, n):
    if np.issubdtype(dtype, np.floating):
        width = 32 if dtype is np.float32 else 64
        elements = st.floats(
            allow_nan=True, allow_infinity=True, width=width
        )
        return data.draw(hnp.arrays(dtype, n, elements=elements))
    return data.draw(hnp.arrays(dtype, n))


class TestRoundTrip:
    """Bit-identity of flatten -> shard -> scan over dtypes and NaNs."""

    @given(data=st.data(), n=st.integers(1, 6), ncols=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_series_roundtrip_bitwise(self, data, n, ncols):
        arrays = {
            name: _column(data, data.draw(_COLUMN_DTYPES), n)
            for name in (f"m{i}" for i in range(ncols))
        }
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(Path(tmp) / "store")
            spec = sim_spec("bl2d", "small", nprocs=NPROCS, seed=7)
            result = RunResult(
                spec=spec, key=spec.key(),
                meta={"trace": "synthetic", "summary": {"mean_x": 0.5}},
                arrays=arrays,
            )
            store.put_result(result)
            wh = Warehouse(Path(tmp) / "wh")
            report = wh.build(store)
            assert report.runs == 1
            back = wh.run_series(result.key)
            assert sorted(back) == sorted(arrays)
            for name, arr in arrays.items():
                assert back[name].dtype == arr.dtype
                assert np.array_equal(back[name], arr, equal_nan=True)
            row = wh.run_row(result.key)
            assert row["summary_mean_x"] == 0.5
            assert row["trace"] == "synthetic"

    def test_nan_and_inf_survive(self, tmp_path):
        store = _store(tmp_path)
        spec = sim_spec("bl2d", "small", nprocs=NPROCS, seed=11)
        arrays = {
            "weird": np.array([np.nan, np.inf, -np.inf, -0.0]),
            "ints": np.array([1, 2, 3, 4], dtype=np.int32),
        }
        store.put_result(RunResult(
            spec=spec, key=spec.key(), meta={"trace": "t"}, arrays=arrays
        ))
        wh = Warehouse(tmp_path / "wh")
        wh.build(store)
        back = wh.run_series(spec.key())
        assert back["weird"].tobytes() == arrays["weird"].tobytes()
        assert back["ints"].dtype == np.int32

    def test_real_run_bit_identity(self, warm):
        store, wh, results, _ = warm
        for result in results:
            if result.spec.kind == "trace":
                continue
            back = wh.run_series(result.key)
            assert sorted(back) == sorted(result.arrays)
            for name, arr in result.arrays.items():
                assert back[name].dtype == arr.dtype
                assert np.array_equal(back[name], arr, equal_nan=True)


class TestIngest:
    def test_preview_writes_nothing(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        plan = wh.plan(store)
        assert len(plan.new_keys) == 2  # one sim + one penalties
        assert plan.total_rows > 0
        assert plan.skipped.get("trace") == 1
        assert not (tmp_path / "wh").exists()
        rendered = render_build_plan(plan, format_name="npz")
        assert "2 new runs" in rendered
        assert "partitioner=penalties" in rendered
        assert "1 trace skipped" in rendered

    def test_build_idempotent(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        first = wh.build(store)
        assert first.runs == 2
        again = wh.build(store)
        assert again.runs == 0 and again.rows == 0 and again.shards == 0
        # Re-opening from disk sees the same manifest.
        reopened = Warehouse(tmp_path / "wh")
        assert reopened.build(store).runs == 0
        assert sorted(reopened.ingested()) == sorted(wh.ingested())

    def test_publish_racing_build_lands_next_build(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        late = {}

        def racing_publish(line):
            # Fires during ingest, after the plan was taken: a worker
            # publishing mid-build.
            if not late:
                late["result"] = run_spec(
                    sim_spec("sc2d", "small", nprocs=NPROCS), store=store
                )

        report = wh.build(store, progress=racing_publish)
        assert report.runs == 2
        assert late and late["result"].key not in wh.ingested()
        catchup = wh.build(store)
        assert catchup.runs == 1
        back = wh.run_series(late["result"].key)
        for name, arr in late["result"].arrays.items():
            assert np.array_equal(back[name], arr, equal_nan=True)
        assert wh.build(store).runs == 0

    def test_chunk_rollover_by_row_budget(self, tmp_path):
        store = _store(tmp_path)
        results = _seed_runs(
            store, partitioners=("nature+fable", "patch-lpt")
        )
        wh = Warehouse(tmp_path / "wh")
        # Every run has > 1 steps rows, so a 1-row budget forces one
        # chunk per run while staying correct.
        report = wh.build(store, max_rows_per_shard=1)
        assert report.shards == report.runs == 3
        for result in results:
            if result.spec.kind == "trace":
                continue
            back = wh.run_series(result.key)
            for name, arr in result.arrays.items():
                assert np.array_equal(back[name], arr, equal_nan=True)

    def test_kinds_filter(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        report = wh.build(store, kinds=("sim",))
        assert report.runs == 1
        with pytest.raises(ValueError, match="cannot ingest kind"):
            wh.plan(store, kinds=("trace",))

    def test_schema_version_pinned(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        wh.build(store)
        manifest = json.loads(
            (tmp_path / "wh" / "manifest.json").read_text()
        )
        assert manifest["schema"] == WAREHOUSE_SCHEMA_VERSION
        manifest["schema"] = WAREHOUSE_SCHEMA_VERSION + 1
        (tmp_path / "wh" / "manifest.json").write_text(
            json.dumps(manifest)
        )
        with pytest.raises(ValueError, match="rebuild it from the store"):
            Warehouse(tmp_path / "wh")

    def test_format_pin_conflict(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        Warehouse(tmp_path / "wh", format="npz").build(store)
        with pytest.raises(ValueError, match="pinned"):
            Warehouse(tmp_path / "wh", format="parquet")


class TestRepair:
    def _crash_chunk(self, wh: Warehouse, root: Path) -> tuple[str, list]:
        """Simulate a crash mid-chunk: runs shard + manifest entry gone,
        steps shard dangling."""
        partition = wh.partitions("steps")[0]
        runs_shard = wh.shards("runs", partition)[0]
        keys = [
            str(k) for k in wh.format.read(runs_shard, columns=["key"])["key"]
        ]
        runs_shard.unlink()
        manifest = json.loads((root / "manifest.json").read_text())
        for key in keys:
            manifest["ingested"].pop(key)
        (root / "manifest.json").write_text(json.dumps(manifest))
        return partition, keys

    def test_dangling_half_deleted_and_reingested(self, tmp_path):
        store = _store(tmp_path)
        results = _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        wh.build(store)
        partition, keys = self._crash_chunk(wh, tmp_path / "wh")
        reopened = Warehouse(tmp_path / "wh")
        assert reopened.shards("steps", partition) == []  # pair incomplete
        report = reopened.build(store)
        assert report.runs == len(keys)
        # The dangling steps half was replaced, not duplicated: per-run
        # readback still matches the store bit-for-bit.
        for result in results:
            if result.key in keys:
                back = reopened.run_series(result.key)
                for name, arr in result.arrays.items():
                    assert np.array_equal(back[name], arr, equal_nan=True)
        assert reopened.build(store).runs == 0

    def test_complete_unmanifested_chunk_adopted(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        first = wh.build(store)
        # Crash after the shard renames, before the manifest write.
        manifest = json.loads((tmp_path / "wh" / "manifest.json").read_text())
        dropped = sorted(manifest["ingested"])
        manifest["ingested"] = {}
        (tmp_path / "wh" / "manifest.json").write_text(json.dumps(manifest))
        reopened = Warehouse(tmp_path / "wh")
        report = reopened.build(store)
        assert report.adopted == len(dropped)
        assert report.runs == 0 and report.shards == 0  # nothing rewritten
        assert sorted(reopened.ingested()) == dropped
        rows = {e["rows"] for e in reopened.ingested().values()}
        assert all(r > 0 for r in rows)  # row counts read back from shards
        assert first.rows == sum(
            e["rows"] for e in reopened.ingested().values()
        )


class TestQuery:
    def test_scan_projection_and_partition_synthesis(self, warm):
        store, wh, results, _ = warm
        table = scan_table(
            wh, "steps", columns=["app", "partitioner", "step", "time"],
            filters={"app": "bl2d", "partitioner": "nature+fable"},
        )
        assert set(table) == {"app", "partitioner", "step", "time"}
        assert set(table["app"]) == {"bl2d"}
        assert set(table["partitioner"]) == {"nature+fable"}
        sim = next(
            r for r in results
            if r.spec.kind == "sim" and r.spec.app == "bl2d"
            and r.spec.partitioner == "nature+fable"
        )
        assert table["step"].size == sim.arrays["step"].size

    def test_scan_full_columns_without_projection(self, warm):
        store, wh, _, _ = warm
        chunks = list(scan(
            wh, "steps", filters={"partitioner": "penalties"}
        ))
        assert chunks
        for chunk in chunks:
            assert "beta_c" in chunk and "key" in chunk

    def test_partition_pruning_skips_non_matching(self, warm):
        store, wh, _, _ = warm
        opened = []
        real_read = wh.format.read

        class Spy(NpzColumnFormat):
            def read(self, path, columns=None):
                opened.append(path)
                return real_read(path, columns=columns)

        spied = Warehouse(wh.root)
        spied.format = Spy()
        rows = scan_table(
            spied, "steps", columns=["app"], filters={"app": "sc2d"}
        )
        assert set(rows["app"]) == {"sc2d"}
        assert opened
        assert all("app=sc2d" in str(p) for p in opened)

    def test_row_filter_on_non_partition_column(self, warm):
        store, wh, _, _ = warm
        table = scan_table(
            wh, "steps", columns=["step", "app"],
            filters={"partitioner": "nature+fable", "step": 0},
        )
        assert set(table["step"]) == {0}
        assert table["step"].size == 2  # one step-0 row per app

    def test_runs_table_scan(self, warm):
        store, wh, results, _ = warm
        table = scan_table(
            wh, "runs", columns=["key", "app", "kind", "n_steps"]
        )
        expected = {r.key for r in results if r.spec.kind != "trace"}
        assert set(table["key"]) == expected

    def test_missing_column_names_the_shard(self, warm):
        store, wh, _, _ = warm
        with pytest.raises(ValueError, match="no column"):
            scan_table(wh, "steps", columns=["beta_c", "load_imbalance"])

    def test_group_stats_matches_numpy(self, warm):
        store, wh, _, _ = warm
        filters = {"partitioner": ("nature+fable", "patch-lpt")}
        stats = group_stats(
            wh, "steps", by=["app", "partitioner"],
            values=["load_imbalance"], filters=filters,
        )
        raw = scan_table(
            wh, "steps", columns=["app", "partitioner", "load_imbalance"],
            filters=filters,
        )
        assert len(stats) == 4  # 2 apps x 2 partitioners
        for (app, part), per_value in stats.items():
            mask = (raw["app"] == app) & (raw["partitioner"] == part)
            data = raw["load_imbalance"][mask].astype(np.float64)
            entry = per_value["load_imbalance"]
            assert entry["count"] == int(mask.sum())
            assert entry["mean"] == pytest.approx(data.mean())
            assert entry["std"] == pytest.approx(data.std())
            assert entry["min"] == pytest.approx(data.min())
            assert entry["max"] == pytest.approx(data.max())

    def test_group_stats_is_chunk_order_independent(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store, partitioners=("nature+fable", "patch-lpt"))
        coarse = Warehouse(tmp_path / "one-chunk")
        coarse.build(store)
        fine = Warehouse(tmp_path / "many-chunks")
        fine.build(store, max_rows_per_shard=2)
        kwargs = dict(
            table="steps", by=["partitioner"], values=["relative_comm"],
            filters={"partitioner": ("nature+fable", "patch-lpt")},
        )
        a = group_stats(coarse, **kwargs)
        b = group_stats(fine, **kwargs)
        assert a.keys() == b.keys()
        for key in a:
            for name in a[key]:
                for stat in ("count", "mean", "std", "min", "max"):
                    assert a[key][name][stat] == pytest.approx(
                        b[key][name][stat]
                    )

    def test_status_counts_pending(self, tmp_path):
        store = _store(tmp_path)
        _seed_runs(store)
        wh = Warehouse(tmp_path / "wh")
        before = wh.status(store)
        assert before["runs"] == 0 and before["pending"] == 2
        wh.build(store)
        after = wh.status(store)
        assert after["runs"] == 2 and after["pending"] == 0
        assert after["rows"] > 0 and after["bytes"] > 0
        assert len(after["partitions"]) == 2


class TestFormats:
    def test_npz_write_read_columns(self, tmp_path):
        fmt = NpzColumnFormat()
        path = tmp_path / "part-abc.npz"
        cols = {
            "a": np.array([1, 2, 3], dtype=np.int64),
            "b": np.array([1.5, np.nan, -0.0]),
        }
        nbytes = fmt.write(path, cols)
        assert nbytes == path.stat().st_size
        assert sorted(fmt.columns(path)) == ["a", "b"]
        back = fmt.read(path, columns=["b"])
        assert list(back) == ["b"]
        assert back["b"].tobytes() == cols["b"].tobytes()

    def test_npz_shards_are_deterministic(self, tmp_path):
        fmt = NpzColumnFormat()
        cols = {"a": np.arange(5), "b": np.linspace(0, 1, 5)}
        fmt.write(tmp_path / "x.npz", cols)
        fmt.write(tmp_path / "y.npz", cols)
        assert (
            (tmp_path / "x.npz").read_bytes()
            == (tmp_path / "y.npz").read_bytes()
        )

    def test_misaligned_columns_rejected(self, tmp_path):
        fmt = NpzColumnFormat()
        with pytest.raises(ValueError, match="aligned"):
            fmt.write(
                tmp_path / "bad.npz",
                {"a": np.arange(3), "b": np.arange(4)},
            )

    def test_resolve_format(self):
        assert resolve_format(None).name == "npz"
        assert resolve_format("npz").name == "npz"
        fmt = NpzColumnFormat()
        assert resolve_format(fmt) is fmt
        with pytest.raises(ValueError, match="unknown warehouse format"):
            resolve_format("feather")

    @pytest.mark.skipif(
        parquet_available(), reason="pyarrow installed in this environment"
    )
    def test_parquet_unavailable_is_informative(self):
        from repro.warehouse import ParquetFormat

        with pytest.raises(RuntimeError, match="pyarrow"):
            ParquetFormat()

    @pytest.mark.skipif(
        not parquet_available(), reason="needs the pyarrow extra"
    )
    def test_parquet_scan_matches_npz(self, tmp_path):
        store = _store(tmp_path)
        results = _seed_runs(store)
        npz_wh = Warehouse(tmp_path / "npz", format="npz")
        pq_wh = Warehouse(tmp_path / "parquet", format="parquet")
        assert npz_wh.build(store).runs == pq_wh.build(store).runs == 2
        for result in results:
            if result.spec.kind == "trace":
                continue
            a = npz_wh.run_series(result.key)
            b = pq_wh.run_series(result.key)
            assert sorted(a) == sorted(b)
            for name in a:
                assert np.array_equal(a[name], b[name], equal_nan=True)
        ka = group_stats(
            npz_wh, by=["app"], values=["time"],
            filters={"partitioner": "nature+fable"},
        )
        kb = group_stats(
            pq_wh, by=["app"], values=["time"],
            filters={"partitioner": "nature+fable"},
        )
        assert ka == kb


class TestReportParity:
    def test_figures_from_warehouse_identical(self, warm):
        from repro.experiments import figure1, figure_app

        store, wh, _, _ = warm
        for via_store, via_wh in (
            (
                figure1(scale="small", nprocs=NPROCS, store=store),
                figure1(scale="small", nprocs=NPROCS, store=store,
                        warehouse=wh),
            ),
            (
                figure_app("sc2d", scale="small", nprocs=NPROCS,
                           store=store),
                figure_app("sc2d", scale="small", nprocs=NPROCS,
                           store=store, warehouse=wh),
            ),
        ):
            assert sorted(via_store) == sorted(via_wh)
            for name, value in via_store.items():
                if isinstance(value, np.ndarray):
                    assert via_wh[name].dtype == value.dtype
                    assert np.array_equal(
                        via_wh[name], value, equal_nan=True
                    )
                else:
                    assert via_wh[name] == value

    def test_warehouse_path_never_computes(self, warm, tmp_path):
        from repro.experiments import figure1

        store, wh, _, _ = warm
        empty = Warehouse(tmp_path / "empty")
        with pytest.raises(KeyError, match="warehouse build"):
            figure1(scale="small", nprocs=NPROCS, store=store,
                    warehouse=empty)


class TestIterResults:
    def test_streams_meta_with_bookkeeping(self, tmp_path):
        store = _store(tmp_path)
        results = _seed_runs(store)
        listed = dict(store.iter_results())
        assert set(listed) == {
            doc["key"] for doc in store.entries()
        }
        for key, doc in listed.items():
            assert doc["nbytes"] > 0
            assert doc["mtime"] > 0
            assert doc["key"] == key
        sims = dict(store.iter_results(kind="sim"))
        assert {doc["kind"] for doc in sims.values()} == {"sim"}
        assert len(sims) == 1

    def test_corrupt_entry_warn_skipped_and_retired(self, tmp_path):
        store = _store(tmp_path)
        results = _seed_runs(store)
        victim = results[0].key
        (store.entry_dir(victim) / "meta.json").write_text("not json{")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            listed = dict(store.iter_results())
        assert victim not in listed
        assert len(listed) == 2  # trace + the surviving run
        assert not store.has(victim)  # retired, next publish repairs

    def test_empty_store(self, tmp_path):
        store = _store(tmp_path)
        assert list(store.iter_results()) == []


class TestCli:
    def _cli(self, args, cache_dir) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        src = str(Path(__file__).resolve().parents[1] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, env=env,
        )

    def test_warehouse_lifecycle(self, tmp_path):
        cache = tmp_path / "cli-store"
        run = self._cli(
            ["run", "--app", "bl2d", "--scale", "small",
             "--nprocs", str(NPROCS)],
            cache,
        )
        assert run.returncode == 0, run.stderr

        preview = self._cli(["warehouse", "build", "--preview"], cache)
        assert preview.returncode == 0, preview.stderr
        assert "1 new runs" in preview.stdout
        assert not (cache / "warehouse").exists()

        build = self._cli(["warehouse", "build"], cache)
        assert build.returncode == 0, build.stderr
        assert "ingested 1 runs" in build.stdout

        rebuild = self._cli(["warehouse", "build", "--quiet"], cache)
        assert "ingested 0 runs" in rebuild.stdout

        status = self._cli(["warehouse", "status", "--json"], cache)
        assert status.returncode == 0, status.stderr
        doc = json.loads(status.stdout)
        assert doc["runs"] == 1 and doc["pending"] == 0
        assert doc["format"] == "npz"

        rows = self._cli(
            ["warehouse", "query", "--table", "runs",
             "--columns", "key,app,n_steps", "--json"],
            cache,
        )
        assert rows.returncode == 0, rows.stderr
        parsed = json.loads(rows.stdout)
        assert len(parsed) == 1 and parsed[0]["app"] == "bl2d"

        grouped = self._cli(
            ["warehouse", "query", "--group-by", "app,partitioner",
             "--stats", "load_imbalance",
             "--where", "partitioner=nature+fable"],
            cache,
        )
        assert grouped.returncode == 0, grouped.stderr
        assert "load_imbalance" in grouped.stdout
        assert "bl2d" in grouped.stdout

    def test_report_from_warehouse_byte_identical(self, tmp_path):
        cache = tmp_path / "cli-store"
        args = ["report", "--figures", "1", "--scale", "small",
                "--nprocs", str(NPROCS), "--quiet"]
        via_store = self._cli(args, cache)
        assert via_store.returncode == 0, via_store.stderr
        build = self._cli(["warehouse", "build", "--quiet"], cache)
        assert build.returncode == 0, build.stderr
        via_wh = self._cli([*args, "--from-warehouse"], cache)
        assert via_wh.returncode == 0, via_wh.stderr
        assert via_wh.stdout == via_store.stdout

    def test_report_from_empty_warehouse_hints_build(self, tmp_path):
        cache = tmp_path / "cli-store"
        run = self._cli(
            ["run", "--app", "bl2d", "--scale", "small",
             "--nprocs", str(NPROCS)],
            cache,
        )
        assert run.returncode == 0, run.stderr
        report = self._cli(
            ["report", "--figures", "1", "--scale", "small",
             "--nprocs", str(NPROCS), "--quiet", "--from-warehouse"],
            cache,
        )
        assert report.returncode == 1
        assert "repro warehouse build" in report.stderr

    def test_cache_ls_json(self, tmp_path):
        cache = tmp_path / "cli-store"
        run = self._cli(
            ["run", "--app", "bl2d", "--scale", "small",
             "--nprocs", str(NPROCS)],
            cache,
        )
        assert run.returncode == 0, run.stderr
        ls = self._cli(["cache", "ls", "--json"], cache)
        assert ls.returncode == 0, ls.stderr
        docs = json.loads(ls.stdout)
        assert len(docs) == 2  # trace + sim
        for doc in docs:
            assert set(doc) >= {
                "key", "kind", "app", "scale", "bytes", "age_seconds"
            }
            assert doc["bytes"] > 0 and doc["age_seconds"] >= 0
        only_sim = self._cli(["cache", "ls", "--json", "--kind", "sim"],
                             cache)
        assert [d["kind"] for d in json.loads(only_sim.stdout)] == ["sim"]
