"""Tests for the spec dependency graph and the DAG executor.

The acceptance contract of the spec-graph redesign: explicit input
edges, diamond-shaped graphs resolve once per node, a sim sweep over a
warm store schedules **zero** trace jobs, resume works layer by layer,
and a missing input fails cleanly instead of cascading.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    MissingInputError,
    ResultStore,
    build_plan,
    run_specs,
    sim_spec,
    penalties_spec,
    toposort_layers,
    trace_spec,
)
from repro.engine import executor as executor_module
from repro.experiments.workloads import _cached_trace, paper_trace

NPROCS = 4


@pytest.fixture(autouse=True)
def _fresh_trace_memo():
    """Each test sees a cold in-process memo (stores are per-test tmp dirs)."""
    _cached_trace.cache_clear()
    yield


def _count_executes(monkeypatch):
    computed: list[str] = []
    real_execute = executor_module.execute

    def counting_execute(spec, store=None):
        computed.append(spec.label())
        return real_execute(spec, store)

    monkeypatch.setattr(executor_module, "execute", counting_execute)
    return computed


class TestToposort:
    def test_diamond(self):
        #    a
        #   / \
        #  b   c
        #   \ /
        #    d
        layers = toposort_layers(
            {"a": [], "b": ["a"], "c": ["a"], "d": ["b", "c"]}
        )
        assert layers == [["a"], ["b", "c"], ["d"]]

    def test_external_deps_treated_as_satisfied(self):
        layers = toposort_layers({"b": ["outside"], "c": ["b"]})
        assert layers == [["b"], ["c"]]

    def test_cycle_raises(self):
        with pytest.raises(ValueError, match="cycle"):
            toposort_layers({"a": ["b"], "b": ["a"]})

    def test_order_deterministic(self):
        layers = toposort_layers({"z": [], "a": [], "m": ["z"]})
        assert layers == [["z", "a"], ["m"]]


class TestBuildPlan:
    def test_inputs_are_explicit_edges(self):
        sim = sim_spec("bl2d", "small", nprocs=NPROCS)
        (trace,) = sim.inputs()
        assert trace == trace_spec("bl2d", "small")
        assert sim.input_keys() == (trace.key(),)
        assert trace.inputs() == ()

    def test_diamond_shares_one_trace_node(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sim = sim_spec("bl2d", "small", nprocs=NPROCS)
        pen = penalties_spec("bl2d", "small", nprocs=NPROCS)
        plan = build_plan([sim, pen], store)
        # Three nodes: the two submitted jobs plus ONE shared trace input.
        assert len(plan.nodes) == 3
        trace_key = trace_spec("bl2d", "small").key()
        assert plan.layers == ((trace_key,), (sim.key(), pen.key()))
        node = plan.node(trace_key)
        assert not node.submitted and node.pending
        assert sorted(plan.edges()) == sorted(
            [(sim.key(), trace_key), (pen.key(), trace_key)]
        )

    def test_submitted_trace_absorbs_implicit_input(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace = trace_spec("bl2d", "small")
        sim = sim_spec("bl2d", "small", nprocs=NPROCS)
        plan = build_plan([trace, sim], store)
        assert len(plan.nodes) == 2
        assert plan.node(trace.key()).submitted

    def test_duplicates_collapse(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sim = sim_spec("bl2d", "small", nprocs=NPROCS)
        plan = build_plan([sim, sim, sim], store)
        assert plan.counts()["submitted"] == 1

    def test_counts_and_stored_pruning(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        paper_trace("bl2d", "small", store=store)  # warm the trace layer
        sim = sim_spec("bl2d", "small", nprocs=NPROCS)
        plan = build_plan([sim], store)
        counts = plan.counts()
        assert counts == {
            "nodes": 2,
            "submitted": 1,
            "stored": 0,
            "compute": 1,
            "implicit_compute": 0,
            "layers": 1,
        }
        # The stored trace satisfies the edge: the sim is layer 0.
        assert plan.layers == ((sim.key(),),)


class TestDagExecutor:
    def _sweep(self):
        return [
            sim_spec(app, "small", nprocs=NPROCS, partitioner=part)
            for app in ("bl2d", "tp2d")
            for part in ("nature+fable", "domain-sfc-hilbert")
        ]

    def test_warm_store_sim_sweep_executes_zero_trace_jobs(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        # Pre-warm ONLY the trace layer (e.g. a previous trace sweep).
        run_specs(
            [trace_spec("bl2d", "small"), trace_spec("tp2d", "small")],
            store=store,
        )
        _cached_trace.cache_clear()  # drop the in-process memo too
        computed = _count_executes(monkeypatch)
        results = run_specs(self._sweep(), store=store)
        assert len(results) == 4
        # Dependency resolution hit the stored traces: zero trace jobs.
        assert all(label.startswith("sim:") for label in computed)
        assert len(computed) == 4

    def test_cold_store_schedules_traces_first(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        computed = _count_executes(monkeypatch)
        run_specs(self._sweep(), store=store)
        assert computed[:2] == ["trace:bl2d:small", "trace:tp2d:small"]
        assert all(label.startswith("sim:") for label in computed[2:])

    def test_resume_after_trace_layer(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        specs = self._sweep()
        # "Killed" run that only finished the trace layer plus one sim.
        run_specs(specs[:1], store=store)
        run_specs([trace_spec("tp2d", "small")], store=store)
        _cached_trace.cache_clear()
        computed = _count_executes(monkeypatch)
        results = run_specs(specs, store=store)
        assert len(results) == len(specs)
        assert computed == [s.label() for s in specs[1:]]

    def test_parallel_layers_bit_identical_to_serial(self, tmp_path):
        import numpy as np

        specs = self._sweep()
        serial = run_specs(specs, n_jobs=1, store=ResultStore(tmp_path / "a"))
        parallel = run_specs(specs, n_jobs=2, store=ResultStore(tmp_path / "b"))
        for ser, par in zip(serial, parallel):
            assert ser.key == par.key
            assert ser.meta == par.meta
            for name in ser.arrays:
                assert np.array_equal(ser.arrays[name], par.arrays[name])

    def test_missing_input_fails_cleanly(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        real_execute = executor_module.execute
        executed: list[str] = []

        def broken_execute(spec, store=None):
            executed.append(spec.label())
            if spec.kind == "trace":
                # Simulate a worker that died before publishing: return a
                # result but leave nothing in the store.
                class _Hollow:
                    key = spec.key()
                    arrays = {}
                    meta = {}

                return _Hollow()
            return real_execute(spec, store)

        monkeypatch.setattr(executor_module, "execute", broken_execute)
        monkeypatch.setattr(
            type(store), "put_result", lambda self, result, overwrite=False: None
        )
        with pytest.raises(MissingInputError, match="trace:bl2d:small"):
            run_specs(
                [sim_spec("bl2d", "small", nprocs=NPROCS)], store=store
            )
        # The dependent sim was never attempted.
        assert executed == ["trace:bl2d:small"]

    def test_progress_reports_trace_inputs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        lines: list[str] = []
        run_specs(
            [sim_spec("bl2d", "small", nprocs=NPROCS)],
            store=store,
            progress=lines.append,
        )
        assert any("(+1 trace input)" in line for line in lines)
        assert any(line.startswith("layer 0") for line in lines)


class TestPlanCli:
    def _cli(self, args: list[str], tmp_path: Path) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cli-store")
        src = str(Path(__file__).resolve().parents[1] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=env,
        )

    GRID = ["--scale", "small", "--apps", "bl2d",
            "--partitioners", "nature+fable,patch-lpt",
            "--nprocs", str(NPROCS)]

    def test_plan_cold_then_warm(self, tmp_path):
        cold = self._cli(["plan", *self.GRID], tmp_path)
        assert cold.returncode == 0, cold.stderr
        assert "2 to compute (+1 trace input)" in cold.stdout
        assert "run  trace:bl2d:small" in cold.stdout
        assert "layer 1 (2 jobs)" in cold.stdout
        sweep = self._cli(["sweep", *self.GRID, "--quiet"], tmp_path)
        assert sweep.returncode == 0, sweep.stderr
        warm = self._cli(["plan", *self.GRID], tmp_path)
        assert warm.returncode == 0, warm.stderr
        assert "0 to compute" in warm.stdout
        assert "hit  trace:bl2d:small" in warm.stdout
        assert "nothing to compute" in warm.stdout

    def test_graph_lists_edges(self, tmp_path):
        out = self._cli(["graph", *self.GRID], tmp_path)
        assert out.returncode == 0, out.stderr
        assert (
            "sim:bl2d:small:nature+fable:P4 [compute] <- "
            "trace:bl2d:small [compute]" in out.stdout
        )
        dot = self._cli(["graph", *self.GRID, "--dot"], tmp_path)
        assert dot.returncode == 0
        assert dot.stdout.startswith("digraph specs {")

    def test_plan_fails_on_unresolvable_specs(self, tmp_path):
        out = self._cli(
            ["plan", "--scale", "small", "--apps", "warp9"], tmp_path
        )
        assert out.returncode != 0
        assert "unknown app" in out.stderr

    def test_describe_lists_components(self, tmp_path):
        out = self._cli(["describe", "--kind", "partitioner"], tmp_path)
        assert out.returncode == 0, out.stderr
        assert "nature+fable" in out.stdout
        assert "--param atomic_unit" in out.stdout

    def test_describe_sees_scales_in_fresh_process(self, tmp_path):
        # The built-in scales register via the workload layer, which the
        # describe command must pull in itself.
        out = self._cli(["describe", "--kind", "scale"], tmp_path)
        assert out.returncode == 0, out.stderr
        assert "scale (4 registered)" in out.stdout
        assert "paper" in out.stdout and "small" in out.stdout
        assert "deep" in out.stdout and "ultra" in out.stdout

    def test_cache_gc(self, tmp_path):
        sweep = self._cli(["sweep", *self.GRID, "--quiet"], tmp_path)
        assert sweep.returncode == 0, sweep.stderr
        ls = self._cli(["cache", "ls"], tmp_path)
        assert "3 entries" in ls.stdout  # 2 sims + the shared trace
        keep = self._cli(["cache", "gc", "--older-than", "1d"], tmp_path)
        assert "evicted 0 entries" in keep.stdout
        assert "0.0 MB reclaimed" in keep.stdout
        # The store-wide total after gc is part of the report.
        assert "store now holds 3 entries" in keep.stdout
        evict = self._cli(["cache", "gc", "--max-bytes", "0"], tmp_path)
        assert "evicted 3 entries" in evict.stdout
        assert "MB reclaimed" in evict.stdout
        assert "store now holds 0 entries, 0.0 MB" in evict.stdout
        assert "0 entries" in self._cli(["cache", "ls"], tmp_path).stdout
        bad = self._cli(["cache", "gc"], tmp_path)
        assert bad.returncode != 0
