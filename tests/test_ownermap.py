"""Property tests: sparse owner-map calculus == dense raster reductions.

The sparse :class:`~repro.geometry.OwnerMap` path is the production
representation; the dense rasters are kept as the cross-check.  These
tests drive both against each other on random N-D inputs (random owner
rasters, random disjoint box assignments, and random properly-nested
hierarchies built from the shared ``boxes_nd`` strategies) and assert
exact agreement, plus the representation laws the refactor ships under:
``from_raster(rasterize(m)) == m`` and semantic (decomposition-
independent) equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Box,
    BoxList,
    NO_OWNER,
    OwnerMap,
    rasterize_owners,
)
from repro.hierarchy import GridHierarchy, PatchLevel
from repro.partition import (
    DomainSfcPartitioner,
    NaturePlusFable,
    PartitionResult,
    PatchBasedPartitioner,
    StickyRepartitioner,
    proc_loads,
)
from repro.simulator import (
    TraceSimulator,
    ghost_exchange_cells,
    ghost_message_pairs,
    interlevel_transfer_cells,
    migration_cells,
    migration_cells_dense,
    per_rank_comm_cells,
)

from tests.strategies import disjoint_boxlists


def owner_rasters(ndim: int, side: int, nprocs: int = 4):
    """Random dense owner rasters with unrefined holes."""

    def build(seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        raster = rng.integers(0, nprocs, size=(side,) * ndim).astype(np.int32)
        raster[rng.random((side,) * ndim) < 0.3] = NO_OWNER
        return raster

    return st.builds(build, st.integers(0, 2**31 - 1))


@st.composite
def nested_hierarchies(draw, ndim: int = 2):
    """Random properly-nested factor-2 hierarchies."""
    side = draw(st.sampled_from([4, 8]))
    domain = Box((0,) * ndim, (side,) * ndim)
    levels = [PatchLevel(0, [domain], ratio=1)]
    parent = BoxList([domain])
    depth = draw(st.integers(min_value=1, max_value=2))
    for l in range(1, depth + 1):
        refined_parent = parent.refine(2)
        raw = draw(
            disjoint_boxlists(
                max_boxes=4, max_coord=side * 2**l, ndim=ndim
            )
        )
        clipped: list[Box] = []
        for b in raw:
            for p in refined_parent:
                piece = b.intersect(p)
                if piece is not None:
                    clipped.append(piece)
        patches = BoxList(clipped).disjointified().coalesced()
        if patches.ncells == 0:
            break
        levels.append(PatchLevel(l, patches, ratio=2))
        parent = patches
    return GridHierarchy(domain, levels)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(owner_rasters(2, 8))
    def test_from_raster_rasterize_2d(self, raster):
        m = OwnerMap.from_raster(raster)
        m.validate_disjoint()
        np.testing.assert_array_equal(m.rasterize(), raster)
        assert OwnerMap.from_raster(m.rasterize()) == m

    @settings(max_examples=25, deadline=None)
    @given(owner_rasters(3, 5))
    def test_from_raster_rasterize_3d(self, raster):
        m = OwnerMap.from_raster(raster)
        np.testing.assert_array_equal(m.rasterize(), raster)
        assert OwnerMap.from_raster(m.rasterize()) == m

    @settings(max_examples=40, deadline=None)
    @given(disjoint_boxlists(max_boxes=5, max_coord=12, ndim=2),
           st.integers(0, 2**31 - 1))
    def test_assignments_match_dense_rasterization(self, boxlist, seed):
        rng = np.random.default_rng(seed)
        domain = Box((0, 0), (12, 12))
        assignments = [
            (b, int(rng.integers(0, 4))) for b in boxlist
        ]
        m = OwnerMap.from_assignments(assignments, domain)
        np.testing.assert_array_equal(
            m.rasterize(), rasterize_owners(assignments, domain)
        )

    def test_equality_is_semantic_not_structural(self):
        # The same cell->rank mapping cut into different boxes.
        a = OwnerMap.from_assignments(
            [(Box((0, 0), (2, 4)), 1)], Box((0, 0), (4, 4))
        )
        b = OwnerMap.from_assignments(
            [(Box((0, 0), (1, 4)), 1), (Box((1, 0), (2, 4)), 1)],
            Box((0, 0), (4, 4)),
        )
        assert a == b
        c = OwnerMap.from_assignments(
            [(Box((0, 0), (2, 4)), 2)], Box((0, 0), (4, 4))
        )
        assert a != c


@pytest.mark.parametrize("ndim,side", [(2, 8), (3, 5)])
class TestMetricsAgree:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_ghost_metrics(self, ndim, side, data):
        raster = data.draw(owner_rasters(ndim, side))
        m = OwnerMap.from_raster(raster)
        assert ghost_exchange_cells(m, 2) == ghost_exchange_cells(raster, 2)
        assert ghost_message_pairs(m) == ghost_message_pairs(raster)
        np.testing.assert_array_equal(
            per_rank_comm_cells(m, 4), per_rank_comm_cells(raster, 4)
        )

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_interlevel(self, ndim, side, data):
        coarse = data.draw(owner_rasters(ndim, side))
        fine = data.draw(owner_rasters(ndim, side * 2))
        assert interlevel_transfer_cells(
            OwnerMap.from_raster(coarse), OwnerMap.from_raster(fine), 2
        ) == interlevel_transfer_cells(coarse, fine, 2)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_migration(self, ndim, side, data):
        prev_rasters = (
            data.draw(owner_rasters(ndim, side)),
            data.draw(owner_rasters(ndim, side * 2)),
        )
        cur_rasters = (
            data.draw(owner_rasters(ndim, side)),
            data.draw(owner_rasters(ndim, side * 2)),
        )
        prev = PartitionResult(owners=prev_rasters, nprocs=4)
        cur = PartitionResult(owners=cur_rasters, nprocs=4)
        assert migration_cells(prev, cur) == migration_cells_dense(
            prev_rasters, cur_rasters
        )


PARTITIONERS = [
    DomainSfcPartitioner(unit_size=1),
    PatchBasedPartitioner(),
    NaturePlusFable(),
    StickyRepartitioner(DomainSfcPartitioner(unit_size=1)),
]


@pytest.mark.parametrize("ndim", [2, 3])
class TestHierarchyMetricsAgree:
    """End-to-end: every simulator metric, sparse vs dense, on random
    N-D hierarchies under every partitioner family (the simulator's
    ``cross_check`` mode recomputes each step on rasters and asserts)."""

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_measure_step_cross_checks(self, ndim, data):
        hierarchy = data.draw(nested_hierarchies(ndim))
        prev_h = data.draw(nested_hierarchies(ndim))
        if prev_h.domain != hierarchy.domain:
            prev_h = hierarchy
        sim = TraceSimulator(cross_check=True)
        for part in PARTITIONERS:
            previous = part.partition(prev_h, 3)
            result = part.partition(hierarchy, 3, previous)
            result.validate(hierarchy)
            sim.measure_step(hierarchy, result, previous, prev_h)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_loads_match_dense_bincount(self, ndim, data):
        hierarchy = data.draw(nested_hierarchies(ndim))
        for part in PARTITIONERS[:2]:
            res = part.partition(hierarchy, 4)
            loads = proc_loads(res, hierarchy)
            dense = np.zeros(4, dtype=np.float64)
            for level, raster in zip(hierarchy, res.rasters()):
                owned = raster[raster != NO_OWNER]
                if owned.size:
                    dense += np.bincount(owned, minlength=4) * float(
                        level.time_refinement_weight()
                    )
            np.testing.assert_array_equal(loads, dense)
