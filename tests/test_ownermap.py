"""Property tests: sparse owner-map calculus == dense raster reductions.

The sparse :class:`~repro.geometry.OwnerMap` path is the production
representation; the dense rasters are kept as the cross-check.  These
tests drive both against each other on random N-D inputs (random owner
rasters, random disjoint box assignments, and random properly-nested
hierarchies built from the shared ``boxes_nd`` strategies) and assert
exact agreement, plus the representation laws the refactor ships under:
``from_raster(rasterize(m)) == m`` and semantic (decomposition-
independent) equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Box,
    BoxList,
    NO_OWNER,
    OwnerMap,
    face_contacts,
    overlap_volume,
    pair_index_counters,
    pair_index_forced,
    pair_intersections,
    rasterize_owners,
    reset_pair_index_counters,
)
from repro.hierarchy import GridHierarchy, PatchLevel
from repro.partition import (
    DomainSfcPartitioner,
    NaturePlusFable,
    PartitionResult,
    PatchBasedPartitioner,
    StickyRepartitioner,
    proc_loads,
)
from repro.simulator import (
    TraceSimulator,
    ghost_exchange_cells,
    ghost_message_pairs,
    interlevel_transfer_cells,
    migration_cells,
    migration_cells_dense,
    per_rank_comm_cells,
)

from tests.strategies import disjoint_boxlists


def owner_rasters(ndim: int, side: int, nprocs: int = 4):
    """Random dense owner rasters with unrefined holes."""

    def build(seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        raster = rng.integers(0, nprocs, size=(side,) * ndim).astype(np.int32)
        raster[rng.random((side,) * ndim) < 0.3] = NO_OWNER
        return raster

    return st.builds(build, st.integers(0, 2**31 - 1))


@st.composite
def nested_hierarchies(draw, ndim: int = 2):
    """Random properly-nested factor-2 hierarchies."""
    side = draw(st.sampled_from([4, 8]))
    domain = Box((0,) * ndim, (side,) * ndim)
    levels = [PatchLevel(0, [domain], ratio=1)]
    parent = BoxList([domain])
    depth = draw(st.integers(min_value=1, max_value=2))
    for l in range(1, depth + 1):
        refined_parent = parent.refine(2)
        raw = draw(
            disjoint_boxlists(
                max_boxes=4, max_coord=side * 2**l, ndim=ndim
            )
        )
        clipped: list[Box] = []
        for b in raw:
            for p in refined_parent:
                piece = b.intersect(p)
                if piece is not None:
                    clipped.append(piece)
        patches = BoxList(clipped).disjointified().coalesced()
        if patches.ncells == 0:
            break
        levels.append(PatchLevel(l, patches, ratio=2))
        parent = patches
    return GridHierarchy(domain, levels)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(owner_rasters(2, 8))
    def test_from_raster_rasterize_2d(self, raster):
        m = OwnerMap.from_raster(raster)
        m.validate_disjoint()
        np.testing.assert_array_equal(m.rasterize(), raster)
        assert OwnerMap.from_raster(m.rasterize()) == m

    @settings(max_examples=25, deadline=None)
    @given(owner_rasters(3, 5))
    def test_from_raster_rasterize_3d(self, raster):
        m = OwnerMap.from_raster(raster)
        np.testing.assert_array_equal(m.rasterize(), raster)
        assert OwnerMap.from_raster(m.rasterize()) == m

    @settings(max_examples=40, deadline=None)
    @given(disjoint_boxlists(max_boxes=5, max_coord=12, ndim=2),
           st.integers(0, 2**31 - 1))
    def test_assignments_match_dense_rasterization(self, boxlist, seed):
        rng = np.random.default_rng(seed)
        domain = Box((0, 0), (12, 12))
        assignments = [
            (b, int(rng.integers(0, 4))) for b in boxlist
        ]
        m = OwnerMap.from_assignments(assignments, domain)
        np.testing.assert_array_equal(
            m.rasterize(), rasterize_owners(assignments, domain)
        )

    def test_equality_is_semantic_not_structural(self):
        # The same cell->rank mapping cut into different boxes.
        a = OwnerMap.from_assignments(
            [(Box((0, 0), (2, 4)), 1)], Box((0, 0), (4, 4))
        )
        b = OwnerMap.from_assignments(
            [(Box((0, 0), (1, 4)), 1), (Box((1, 0), (2, 4)), 1)],
            Box((0, 0), (4, 4)),
        )
        assert a == b
        c = OwnerMap.from_assignments(
            [(Box((0, 0), (2, 4)), 2)], Box((0, 0), (4, 4))
        )
        assert a != c


@pytest.mark.parametrize("ndim,side", [(2, 8), (3, 5)])
class TestMetricsAgree:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_ghost_metrics(self, ndim, side, data):
        raster = data.draw(owner_rasters(ndim, side))
        m = OwnerMap.from_raster(raster)
        assert ghost_exchange_cells(m, 2) == ghost_exchange_cells(raster, 2)
        assert ghost_message_pairs(m) == ghost_message_pairs(raster)
        np.testing.assert_array_equal(
            per_rank_comm_cells(m, 4), per_rank_comm_cells(raster, 4)
        )

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_interlevel(self, ndim, side, data):
        coarse = data.draw(owner_rasters(ndim, side))
        fine = data.draw(owner_rasters(ndim, side * 2))
        assert interlevel_transfer_cells(
            OwnerMap.from_raster(coarse), OwnerMap.from_raster(fine), 2
        ) == interlevel_transfer_cells(coarse, fine, 2)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_migration(self, ndim, side, data):
        prev_rasters = (
            data.draw(owner_rasters(ndim, side)),
            data.draw(owner_rasters(ndim, side * 2)),
        )
        cur_rasters = (
            data.draw(owner_rasters(ndim, side)),
            data.draw(owner_rasters(ndim, side * 2)),
        )
        prev = PartitionResult(owners=prev_rasters, nprocs=4)
        cur = PartitionResult(owners=cur_rasters, nprocs=4)
        assert migration_cells(prev, cur) == migration_cells_dense(
            prev_rasters, cur_rasters
        )


def corner_arrays(ndim: int, max_boxes: int = 20, max_coord: int = 64,
                  max_extent: int = 16):
    """Random (possibly overlapping, possibly empty) corner arrays."""

    def build(seed: int, n: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        lo = rng.integers(0, max_coord, size=(n, ndim))
        ext = rng.integers(1, max_extent + 1, size=(n, ndim))
        return np.concatenate((lo, lo + ext), axis=1).astype(np.int64)

    return st.builds(
        build, st.integers(0, 2**31 - 1), st.integers(0, max_boxes)
    )


INDEXED_MODES = ("grid", "sweep")


def _assert_pair_results_identical(a: np.ndarray, b: np.ndarray) -> None:
    """Indexed modes must be *bit-identical* to brute force: same corner
    rows, same (ai, bj) source indices, same emission order."""
    with pair_index_forced("bruteforce"):
        ref = pair_intersections(a, b)
        ref_vol = overlap_volume(a, b)
    for mode in INDEXED_MODES:
        with pair_index_forced(mode):
            got = pair_intersections(a, b)
            got_vol = overlap_volume(a, b)
        assert got_vol == ref_vol
        for r, g in zip(ref, got):
            assert r.shape == g.shape
            np.testing.assert_array_equal(r, g)


def _assert_face_results_identical(
    corners: np.ndarray, ranks: np.ndarray
) -> None:
    with pair_index_forced("bruteforce"):
        ref = face_contacts(corners, ranks)
    for mode in INDEXED_MODES:
        with pair_index_forced(mode):
            got = face_contacts(corners, ranks)
        for r, g in zip(ref, got):
            assert r.shape == g.shape
            np.testing.assert_array_equal(r, g)


@pytest.mark.parametrize("ndim", [1, 2, 3, 4])
class TestPairIndex:
    """The grid-bucket pair index is a pure pruning layer: every indexed
    mode must reproduce the brute-force kernels bit for bit."""

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_pair_intersections_identical(self, ndim, data):
        a = data.draw(corner_arrays(ndim))
        b = data.draw(corner_arrays(ndim))
        _assert_pair_results_identical(a, b)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_face_contacts_identical(self, ndim, data):
        corners = data.draw(corner_arrays(ndim))
        seed = data.draw(st.integers(0, 2**31 - 1))
        ranks = np.random.default_rng(seed).integers(
            0, 4, size=corners.shape[0]
        ).astype(np.int32)
        _assert_face_results_identical(corners, ranks)

    def test_all_boxes_in_one_cell(self, ndim):
        # Adversarial: every box identical (maximal bucket collisions).
        row = [0] * ndim + [2] * ndim
        a = np.tile(np.asarray([row], dtype=np.int64), (40, 1))
        _assert_pair_results_identical(a, a)
        ranks = np.arange(40, dtype=np.int32)
        _assert_face_results_identical(a, ranks)

    def test_long_skinny_boxes(self, ndim):
        # Adversarial: extreme aspect ratios spanning many buckets (the
        # sweep-fallback trigger), crossing an orthogonal family.
        n = 30
        a = np.zeros((n, 2 * ndim), dtype=np.int64)
        b = np.zeros((n, 2 * ndim), dtype=np.int64)
        for i in range(n):
            a[i, 0], a[i, ndim] = 0, 600  # long in axis 0
            b[i, 0], b[i, ndim] = i * 3, i * 3 + 1
            for d in range(1, ndim):
                a[i, d], a[i, ndim + d] = i * 3, i * 3 + 1
                b[i, d], b[i, ndim + d] = 0, 600  # long elsewhere
        _assert_pair_results_identical(a, b)
        both = np.concatenate((a, b))
        ranks = np.arange(2 * n, dtype=np.int32)
        _assert_face_results_identical(both, ranks)

    def test_single_box_and_empty(self, ndim):
        one = np.asarray(
            [[0] * ndim + [3] * ndim], dtype=np.int64
        )
        empty = np.empty((0, 2 * ndim), dtype=np.int64)
        _assert_pair_results_identical(one, one)
        _assert_pair_results_identical(one, empty)
        _assert_pair_results_identical(empty, one)
        _assert_pair_results_identical(empty, empty)
        _assert_face_results_identical(one, np.zeros(1, dtype=np.int32))
        _assert_face_results_identical(empty, np.empty(0, dtype=np.int32))

    def test_abutting_boxes_share_closed_bucket(self, ndim):
        # Face contacts need *touching* pairs; a tiling of unit-offset
        # slabs is all faces, no overlap.
        n = 24
        rows = []
        for i in range(n):
            lo = [i * 4] + [0] * (ndim - 1)
            hi = [(i + 1) * 4] + [8] * (ndim - 1)
            rows.append(lo + hi)
        corners = np.asarray(rows, dtype=np.int64)
        ranks = (np.arange(n) % 3).astype(np.int32)
        _assert_face_results_identical(corners, ranks)

    def test_counters_record_pruning(self, ndim):
        reset_pair_index_counters()
        rng = np.random.default_rng(7)
        lo = rng.integers(0, 4000, size=(600, ndim))
        a = np.concatenate((lo, lo + 4), axis=1).astype(np.int64)
        with pair_index_forced("grid"):
            pair_intersections(a, a)
        c = pair_index_counters()
        assert c.queries == 1
        assert c.pair_product == 600 * 600
        assert c.candidate_pairs < c.pair_product
        assert c.exact_pairs <= c.candidate_pairs
        assert c.pruning_ratio() > 1.0


PARTITIONERS = [
    DomainSfcPartitioner(unit_size=1),
    PatchBasedPartitioner(),
    NaturePlusFable(),
    StickyRepartitioner(DomainSfcPartitioner(unit_size=1)),
]


@pytest.mark.parametrize("ndim", [2, 3])
class TestHierarchyMetricsAgree:
    """End-to-end: every simulator metric, sparse vs dense, on random
    N-D hierarchies under every partitioner family (the simulator's
    ``cross_check`` mode recomputes each step on rasters and asserts)."""

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_measure_step_cross_checks(self, ndim, data):
        hierarchy = data.draw(nested_hierarchies(ndim))
        prev_h = data.draw(nested_hierarchies(ndim))
        if prev_h.domain != hierarchy.domain:
            prev_h = hierarchy
        sim = TraceSimulator(cross_check=True)
        for part in PARTITIONERS:
            previous = part.partition(prev_h, 3)
            result = part.partition(hierarchy, 3, previous)
            result.validate(hierarchy)
            sim.measure_step(hierarchy, result, previous, prev_h)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_loads_match_dense_bincount(self, ndim, data):
        hierarchy = data.draw(nested_hierarchies(ndim))
        for part in PARTITIONERS[:2]:
            res = part.partition(hierarchy, 4)
            loads = proc_loads(res, hierarchy)
            dense = np.zeros(4, dtype=np.float64)
            for level, raster in zip(hierarchy, res.rasters()):
                owned = raster[raster != NO_OWNER]
                if owned.size:
                    dense += np.bincount(owned, minlength=4) * float(
                        level.time_refinement_weight()
                    )
            np.testing.assert_array_equal(loads, dense)
