"""White-box tests of Nature+Fable's internal stages."""

from __future__ import annotations

import numpy as np

from repro.geometry import NO_OWNER, Box
from repro.hierarchy import GridHierarchy, PatchLevel
from repro.partition import NatureFableParams, NaturePlusFable
from repro.partition.hybrid import _assign_sequence


def two_core_hierarchy() -> GridHierarchy:
    """Two well-separated refined islands -> two Cores plus a Hue."""
    domain = Box((0, 0), (32, 32))
    return GridHierarchy(
        domain,
        [
            PatchLevel(0, [domain], ratio=1),
            PatchLevel(
                1,
                [Box((2, 2), (14, 14)), Box((40, 40), (60, 60))],
                ratio=2,
            ),
        ],
    )


class TestAssignSequence:
    def test_single_rank(self):
        out = _assign_sequence(np.ones(5), np.array([3]), q=1)
        assert (out == 3).all()

    def test_contiguous_chains_q1(self):
        out = _assign_sequence(np.ones(8), np.array([0, 1]), q=1)
        assert out.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_rank_offsets_respected(self):
        out = _assign_sequence(np.ones(4), np.array([5, 6]), q=1)
        assert set(out.tolist()) == {5, 6}

    def test_q2_still_covers_all_elements(self):
        out = _assign_sequence(np.ones(12), np.array([0, 1, 2]), q=2)
        assert out.size == 12
        assert set(out.tolist()) <= {0, 1, 2}

    def test_q2_balances_loads(self):
        rng = np.random.default_rng(4)
        weights = rng.random(60)
        ranks = np.array([0, 1, 2, 3])
        out1 = _assign_sequence(weights, ranks, q=1)
        out4 = _assign_sequence(weights, ranks, q=4)

        def bottleneck(assign):
            return max(weights[assign == r].sum() for r in ranks)

        assert bottleneck(out4) <= bottleneck(out1) + 1e-9

    def test_q2_fragments_more(self):
        weights = np.ones(32)
        ranks = np.array([0, 1, 2, 3])
        def cuts(assign):
            return int((np.diff(assign) != 0).sum())
        assert cuts(_assign_sequence(weights, ranks, q=4)) >= cuts(
            _assign_sequence(weights, ranks, q=1)
        )


class TestHueCore:
    def test_two_cores_get_disjoint_rank_groups(self):
        h = two_core_hierarchy()
        res = NaturePlusFable().partition(h, 8)
        res.validate(h)
        # Owners of the two refined islands must not overlap (separate
        # meta-partitions on contiguous rank ranges).
        fine = res.rasters()[1]
        left = set(np.unique(fine[2:14, 2:14]).tolist()) - {NO_OWNER}
        right = set(np.unique(fine[40:60, 40:60]).tolist()) - {NO_OWNER}
        assert left and right
        assert left.isdisjoint(right)

    def test_hue_cells_owned(self):
        h = two_core_hierarchy()
        res = NaturePlusFable().partition(h, 8)
        base = res.rasters()[0]
        refined = h.refined_mask_on_base()
        hue_owners = base[~refined]
        assert (hue_owners != NO_OWNER).all()

    def test_heavier_core_gets_more_ranks(self):
        h = two_core_hierarchy()  # right island is much bigger
        res = NaturePlusFable().partition(h, 8)
        fine = res.rasters()[1]
        left = set(np.unique(fine[2:14, 2:14]).tolist()) - {NO_OWNER}
        right = set(np.unique(fine[40:60, 40:60]).tolist()) - {NO_OWNER}
        assert len(right) >= len(left)

    def test_flat_hierarchy_all_hue(self, flat_hierarchy):
        res = NaturePlusFable().partition(flat_hierarchy, 4)
        res.validate(flat_hierarchy)
        loads = np.bincount(res.rasters()[0].ravel(), minlength=4)
        assert (loads > 0).all()  # hue blocking spreads the base grid

    def test_single_rank_everything_on_zero(self):
        h = two_core_hierarchy()
        res = NaturePlusFable().partition(h, 1)
        for raster in res.rasters():
            owned = raster[raster != NO_OWNER]
            assert (owned == 0).all()


class TestBilevels:
    def deep_hierarchy(self) -> GridHierarchy:
        domain = Box((0, 0), (16, 16))
        return GridHierarchy(
            domain,
            [
                PatchLevel(0, [domain], ratio=1),
                PatchLevel(1, [Box((8, 8), (24, 24))], ratio=2),
                PatchLevel(2, [Box((20, 20), (44, 44))], ratio=2),
                PatchLevel(3, [Box((44, 44), (84, 84))], ratio=2),
            ],
        )

    def test_bilevel_pairs_share_decomposition(self):
        h = self.deep_hierarchy()
        res = NaturePlusFable(NatureFableParams(bilevel_size=2)).partition(h, 4)
        res.validate(h)
        # Levels 2 and 3 form a bi-level: level-3 owners refine level-2's.
        coarse = res.rasters()[2]
        fine = res.rasters()[3]
        up = np.repeat(np.repeat(coarse, 2, 0), 2, 1)
        owned = (fine != NO_OWNER) & (up != NO_OWNER)
        np.testing.assert_array_equal(fine[owned], up[owned])

    def test_bilevel_size_one_is_per_level(self):
        h = self.deep_hierarchy()
        res = NaturePlusFable(NatureFableParams(bilevel_size=1)).partition(h, 4)
        res.validate(h)

    def test_bilevel_size_three(self):
        h = self.deep_hierarchy()
        res = NaturePlusFable(NatureFableParams(bilevel_size=3)).partition(h, 4)
        res.validate(h)
