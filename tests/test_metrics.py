"""Tests for the grid-relative metrics (paper section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    load_imbalance_percent,
    relative_communication,
    relative_migration,
)


class TestLoadImbalancePercent:
    def test_perfect_balance(self):
        assert load_imbalance_percent(np.array([5.0, 5.0, 5.0])) == 0.0

    def test_known_value(self):
        # max 8, avg 6 -> 100*(8/6 - 1) = 33.33 %
        v = load_imbalance_percent(np.array([8.0, 4.0, 6.0]))
        assert v == pytest.approx(100 * (8 / 6 - 1))

    def test_all_zero(self):
        assert load_imbalance_percent(np.zeros(4)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance_percent(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance_percent(np.array([1.0, -1.0]))


class TestRelativeMigration:
    def test_full_move_is_one(self, simple_hierarchy):
        assert relative_migration(
            simple_hierarchy.ncells, simple_hierarchy
        ) == pytest.approx(1.0)

    def test_zero(self, simple_hierarchy):
        assert relative_migration(0, simple_hierarchy) == 0.0

    def test_negative_rejected(self, simple_hierarchy):
        with pytest.raises(ValueError):
            relative_migration(-1, simple_hierarchy)


class TestRelativeCommunication:
    def test_full_involvement_is_one(self, simple_hierarchy):
        assert relative_communication(
            simple_hierarchy.workload, simple_hierarchy
        ) == pytest.approx(1.0)

    def test_zero(self, simple_hierarchy):
        assert relative_communication(0, simple_hierarchy) == 0.0

    def test_negative_rejected(self, simple_hierarchy):
        with pytest.raises(ValueError):
            relative_communication(-5, simple_hierarchy)

    def test_workload_normalization_differs_from_cells(self, simple_hierarchy):
        """Communication normalizes by workload (cells x local steps), not
        by cell count — the distinction the paper introduces."""
        assert simple_hierarchy.workload != simple_hierarchy.ncells
        v = relative_communication(simple_hierarchy.ncells, simple_hierarchy)
        assert v == pytest.approx(
            simple_hierarchy.ncells / simple_hierarchy.workload
        )
