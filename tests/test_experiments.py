"""Tests for the experiment harness (small scale) and analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    APP_NAMES,
    FIGURE_APPS,
    ablation_denominator,
    amplitude_ratio,
    best_lag,
    dimension2_series,
    dominant_period,
    envelope_fraction,
    figure1,
    figure_app,
    meta_vs_static,
    paper_config,
    paper_trace,
    pearson,
    static_partitioner_suite,
)


class TestAnalysis:
    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_is_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            pearson(np.ones(1), np.ones(1))

    def test_dominant_period_sine(self):
        t = np.arange(60)
        series = np.sin(2 * np.pi * t / 12.0)
        assert dominant_period(series) == 12

    def test_dominant_period_monotone_none(self):
        assert dominant_period(np.arange(30.0)) is None

    def test_dominant_period_too_short(self):
        assert dominant_period(np.array([1.0, 2.0])) is None

    def test_best_lag_detects_lead(self):
        t = np.arange(40)
        measured = np.sin(2 * np.pi * t / 10.0)
        model = np.sin(2 * np.pi * (t + 2) / 10.0)  # model leads by 2
        assert best_lag(model, measured, max_lag=3) == 2

    def test_best_lag_zero_for_aligned(self):
        t = np.arange(40)
        s = np.sin(2 * np.pi * t / 9.0)
        assert best_lag(s, s) == 0

    def test_best_lag_validation(self):
        with pytest.raises(ValueError):
            best_lag(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            best_lag(np.ones(5), np.ones(5), max_lag=-1)

    def test_envelope_fraction(self):
        upper = np.array([1.0, 2.0, 3.0])
        lower = np.array([0.5, 2.5, 2.0])
        assert envelope_fraction(upper, lower) == pytest.approx(2 / 3)

    def test_envelope_validation(self):
        with pytest.raises(ValueError):
            envelope_fraction(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            envelope_fraction(np.array([]), np.array([]))

    def test_amplitude_ratio(self):
        a = np.array([0.0, 2.0, 0.0, 2.0])
        b = np.array([0.0, 4.0, 0.0, 4.0])
        assert amplitude_ratio(a, b) == pytest.approx(0.5)

    def test_amplitude_ratio_constant_measured(self):
        assert amplitude_ratio(np.arange(4.0), np.ones(4)) == float("inf")


class TestWorkloads:
    def test_app_names_order(self):
        assert APP_NAMES == ("rm2d", "bl2d", "sc2d", "tp2d")

    def test_figure_mapping(self):
        assert FIGURE_APPS == {4: "rm2d", 5: "bl2d", 6: "sc2d", 7: "tp2d"}

    def test_paper_config_scales(self):
        paper = paper_config("paper")
        small = paper_config("small")
        assert paper.nsteps > small.nsteps
        assert paper.max_levels >= small.max_levels
        with pytest.raises(ValueError):
            paper_config("huge")

    def test_paper_3d_is_paper_faithful(self):
        # Sparse owner maps lifted the raster-memory cap: the 3-D paper
        # scale carries the paper's full 5 levels of refinement.
        cfg = paper_config("paper", ndim=3)
        assert cfg.base_shape == (16, 16, 16)
        assert cfg.max_levels == 5

    def test_deep_scale_is_3d_only(self):
        deep = paper_config("deep", ndim=3)
        assert deep.base_shape == (32, 32, 32)
        assert deep.max_levels == 5
        # 512^3 finest index space: infeasible as a dense raster, the
        # whole point of the sparse representation.
        assert deep.level_shape(4) == (512, 512, 512)
        with pytest.raises(ValueError, match="deep"):
            paper_config("deep", ndim=2)

    def test_paper_trace_cached(self):
        a = paper_trace("bl2d", "small")
        b = paper_trace("bl2d", "small")
        assert a is b  # lru_cache

    def test_paper_trace_unknown(self):
        with pytest.raises(ValueError):
            paper_trace("xx2d", "small")


class TestFigures:
    def test_figure1_series(self):
        fig = figure1(scale="small", nprocs=4)
        assert fig["trace"] == "bl2d"
        n = fig["step"].size
        assert fig["load_imbalance_percent"].shape == (n,)
        assert fig["relative_comm"].shape == (n,)
        assert (fig["load_imbalance_percent"] >= 0).all()

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_figure_app_contract(self, name):
        fig = figure_app(name, scale="small", nprocs=4)
        n = fig["step"].size
        for key in (
            "actual_relative_comm",
            "beta_c",
            "actual_relative_migration",
            "beta_m",
        ):
            assert fig[key].shape == (n,)
        assert -1.0 <= fig["comm_correlation"] <= 1.0
        assert -1.0 <= fig["migration_correlation"] <= 1.0
        assert 0.0 <= fig["comm_envelope_fraction"] <= 1.0
        assert (fig["beta_m"] >= 0).all() and (fig["beta_m"] <= 1).all()
        assert fig["beta_m"][0] == 0.0

    def test_figure_app_unknown(self):
        with pytest.raises(ValueError):
            figure_app("xx2d")

    def test_dimension2_series(self):
        d = dimension2_series("bl2d", scale="small", nprocs=4)
        n = d["step"].size
        assert d["requested_seconds"].shape == (n,)
        assert d["offered_seconds"].shape == (n,)
        assert ((d["dim2"] >= 0) & (d["dim2"] <= 1)).all()
        assert (d["normalized_grid_size"] <= 1.0).all()


class TestAblations:
    def test_static_suite_nonempty(self):
        suite = static_partitioner_suite()
        assert len(suite) >= 4
        for part in suite.values():
            assert hasattr(part, "partition")

    def test_ablation_denominator_small(self):
        table = ablation_denominator(nprocs=4, scale="small")
        assert set(table) == set(APP_NAMES)
        for row in table.values():
            assert set(row) == {"current", "previous", "max"}
            for v in row.values():
                assert -1.0 <= v <= 1.0

    def test_meta_vs_static_small(self):
        from repro.experiments import machine_scenarios, regret_summary

        table = meta_vs_static(nprocs=4, scale="small")
        assert set(table) == set(APP_NAMES)
        for per_machine in table.values():
            assert set(per_machine) == set(machine_scenarios())
            for row in per_machine.values():
                assert "meta-partitioner" in row
                assert "armada-octant" in row
                assert "meta_regret" in row
                for k, v in row.items():
                    if k != "meta_regret":
                        assert v > 0
        worst = regret_summary(table)
        assert set(worst) >= {"meta-partitioner", "armada-octant"}
        for v in worst.values():
            assert v >= 0.0
