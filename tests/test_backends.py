"""Tests for the execution-backend subsystem and the cluster queue.

Covers the backend registry/resolution contract, the lease-file queue
protocol, serial/process/cluster result parity (bit-identical stores),
the worker daemon, and the failure paths the broker exists for: a
worker SIGKILLed mid-job gets its lease expired and the job requeued to
completion, retry-cap exhaustion surfaces the failing spec key, and
corrupt store entries degrade to cache misses instead of crashes.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    ClusterBackend,
    ClusterJobError,
    JobQueue,
    ProcessBackend,
    ResultStore,
    SerialBackend,
    Worker,
    resolve_backend,
    run_spec,
    run_specs,
    sim_spec,
    trace_spec,
)
from repro.engine import cli
from repro.engine.backends import backend_names
from repro.engine.backends.worker import FAIL_KEYS_ENV
from repro.experiments import clear_trace_cache, paper_trace
from repro.registry import create, registry

NPROCS = 4


def _sweep(apps=("tp2d",), partitioners=("nature+fable", "patch-lpt")):
    return [
        sim_spec(app, "small", nprocs=NPROCS, partitioner=part)
        for app in apps
        for part in partitioners
    ]


def _store_file_hashes(store: ResultStore) -> dict:
    """sha256 of every artifact file, keyed by (entry key, file name)."""
    out = {}
    for doc in store.entries():
        entry = store.entry_dir(doc["key"])
        for path in sorted(p for p in entry.iterdir() if p.is_file()):
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            out[(doc["key"], path.name)] = digest
    return out


def _worker_env(extra: dict | None = None) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.update(extra or {})
    return env


def _spawn_worker(
    store_root, *extra: str, env_extra: dict | None = None
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "worker",
        "--cache-dir", str(store_root),
        "--poll-interval", "0.05",
        "--heartbeat-interval", "0.2",
        "--idle-timeout", "60",
        "--quiet",
    ]
    return subprocess.Popen(
        command + list(extra),
        env=_worker_env(env_extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _threaded_worker(store, queue=None, **kwargs):
    """A Worker served from a daemon thread (cheap in-process cluster)."""
    worker = Worker(
        store,
        queue,
        poll_interval=0.02,
        heartbeat_interval=0.1,
        **kwargs,
    )
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _fast_cluster(**overrides) -> ClusterBackend:
    kwargs = dict(
        lease_timeout=10.0,
        poll_interval=0.05,
        stall_timeout=60.0,
        max_attempts=3,
    )
    kwargs.update(overrides)
    return ClusterBackend(**kwargs)


class TestBackendRegistry:
    def test_builtins_registered(self):
        names = tuple(registry("backend"))
        assert names == ("serial", "process", "cluster")
        assert backend_names() == names

    def test_default_resolution_tracks_n_jobs(self):
        assert isinstance(resolve_backend(None, n_jobs=1), SerialBackend)
        backend = resolve_backend(None, n_jobs=3)
        assert isinstance(backend, ProcessBackend)
        assert backend.n_jobs == 3

    def test_names_and_instances_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        cluster = resolve_backend("cluster", workers=2)
        assert isinstance(cluster, ClusterBackend)
        assert cluster.workers == 2
        instance = ClusterBackend(workers=5)
        assert resolve_backend(instance) is instance

    def test_unknown_backend_and_bad_type(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("slurm-maybe-later")
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(42)

    def test_workers_only_for_cluster(self):
        with pytest.raises(ValueError, match="only meaningful"):
            resolve_backend("process", workers=2)
        with pytest.raises(ValueError, match="only meaningful"):
            resolve_backend(None, workers=2)
        with pytest.raises(ValueError, match="backend instance"):
            resolve_backend(ClusterBackend(), workers=2)
        # workers=0 means "external workers" and is never an error.
        assert isinstance(resolve_backend("serial", workers=0), SerialBackend)

    def test_registry_create_validates_params(self):
        backend = create("backend", "process", n_jobs=3)
        assert backend.n_jobs == 3
        with pytest.raises(ValueError, match="unknown parameter"):
            create("backend", "cluster", warp_factor=9)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProcessBackend(n_jobs=0)
        with pytest.raises(ValueError):
            ClusterBackend(workers=-1)
        with pytest.raises(ValueError):
            ClusterBackend(max_attempts=0)


class TestJobQueue:
    def _queue(self, tmp_path) -> JobQueue:
        return JobQueue(tmp_path / "queue")

    def test_enqueue_once(self, tmp_path):
        queue = self._queue(tmp_path)
        spec = trace_spec("tp2d", "small")
        assert queue.enqueue(spec, max_attempts=5)
        assert not queue.enqueue(spec)  # existing ticket kept
        (ticket,) = queue.tickets()
        assert ticket["key"] == spec.key()
        assert ticket["attempt"] == 0
        assert ticket["max_attempts"] == 5
        assert ticket["label"] == spec.label()

    def test_claim_is_exclusive(self, tmp_path):
        queue = self._queue(tmp_path)
        key = trace_spec("tp2d", "small").key()
        assert queue.claim(key, "alice", attempt=0)
        assert not queue.claim(key, "bob", attempt=0)
        lease = queue.read_lease(key)
        assert lease["owner"] == "alice"

    def test_heartbeat_only_by_owner(self, tmp_path):
        queue = self._queue(tmp_path)
        key = trace_spec("tp2d", "small").key()
        queue.claim(key, "alice", attempt=0, now=100.0)
        assert queue.heartbeat(key, "alice", now=200.0)
        assert queue.read_lease(key)["heartbeat_at"] == 200.0
        assert not queue.heartbeat(key, "bob", now=300.0)
        assert queue.read_lease(key)["heartbeat_at"] == 200.0

    def test_expire_requeues_and_charges_attempt(self, tmp_path):
        queue = self._queue(tmp_path)
        spec = trace_spec("tp2d", "small")
        key = spec.key()
        queue.enqueue(spec)
        queue.claim(key, "crashed", attempt=0, now=100.0)
        assert queue.expire_leases(30.0, now=120.0) == []  # still fresh
        (expired,) = queue.expire_leases(30.0, now=200.0)
        assert expired["owner"] == "crashed"
        assert queue.read_lease(key) is None
        assert queue.read_ticket(key)["attempt"] == 1

    def test_attempt_not_double_charged(self, tmp_path):
        queue = self._queue(tmp_path)
        spec = trace_spec("tp2d", "small")
        key = spec.key()
        queue.enqueue(spec)
        queue.bump_attempt(key, expected=0)
        # The crashed worker's belated failure report charges the same
        # attempt the expiry sweep already charged.
        queue.bump_attempt(key, expected=0)
        assert queue.read_ticket(key)["attempt"] == 1

    def test_fail_records_and_releases(self, tmp_path):
        queue = self._queue(tmp_path)
        spec = trace_spec("tp2d", "small")
        key = spec.key()
        queue.enqueue(spec)
        queue.claim(key, "alice", attempt=0)
        queue.fail(key, "alice", attempt=0, error="Traceback ...\nBoom")
        assert queue.read_lease(key) is None
        assert queue.read_ticket(key)["attempt"] == 1
        (record,) = queue.failures(key)
        assert record["owner"] == "alice"
        assert "Boom" in record["error"]
        assert queue.clear_failures(key) == 1
        assert queue.failures(key) == []

    def test_complete_cleans_up(self, tmp_path):
        queue = self._queue(tmp_path)
        spec = trace_spec("tp2d", "small")
        key = spec.key()
        queue.enqueue(spec)
        queue.claim(key, "alice", attempt=0)
        queue.complete(key, "alice")
        assert queue.tickets() == []
        assert queue.read_lease(key) is None

    def test_worker_registry(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.register_worker("w1", now=100.0)
        queue.heartbeat_worker("w1", jobs_done=3, now=150.0)
        (doc,) = queue.alive_workers(60.0, now=200.0)
        assert doc["worker_id"] == "w1"
        assert doc["jobs_done"] == 3
        assert queue.alive_workers(60.0, now=500.0) == []
        queue.unregister_worker("w1")
        assert queue.workers() == []


class TestLocalBackends:
    def test_serial_backend_matches_default(self, tmp_path):
        specs = _sweep()
        a = run_specs(specs, store=ResultStore(tmp_path / "a"))
        b = run_specs(specs, store=ResultStore(tmp_path / "b"),
                      backend="serial")
        for left, right in zip(a, b):
            assert left.key == right.key
            for name in left.arrays:
                assert np.array_equal(left.arrays[name], right.arrays[name])

    def test_process_backend_bit_identical_to_serial(self, tmp_path):
        specs = _sweep(apps=("tp2d", "bl2d"))
        run_specs(specs, store=ResultStore(tmp_path / "ser"),
                  backend="serial")
        run_specs(specs, store=ResultStore(tmp_path / "proc"),
                  backend="process", n_jobs=2)
        ser = _store_file_hashes(ResultStore(tmp_path / "ser"))
        proc = _store_file_hashes(ResultStore(tmp_path / "proc"))
        assert ser == proc

    def test_verbose_progress_lines(self, tmp_path):
        lines: list[str] = []
        run_specs(_sweep(), store=ResultStore(tmp_path / "v"),
                  verbose=True, progress=lines.append)
        assert any(line.startswith("backend: serial") for line in lines)
        status = [line for line in lines if "queued" in line]
        assert status  # per-layer queued/leased/done lines
        assert any("done" in line for line in status)

    def test_process_verbose_progress_lines(self, tmp_path):
        lines: list[str] = []
        run_specs(_sweep(apps=("tp2d", "bl2d")),
                  store=ResultStore(tmp_path / "pv"), backend="process",
                  n_jobs=2, verbose=True, progress=lines.append)
        assert any("leased" in line and "done" in line for line in lines)


class TestWorkerDaemon:
    def test_max_jobs_exit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = JobQueue.for_store(store)
        spec = trace_spec("tp2d", "small")
        queue.enqueue(spec)
        worker = Worker(store, queue, poll_interval=0.02,
                        heartbeat_interval=0.1, max_jobs=1)
        assert worker.run() == 1
        assert store.has(spec.key())
        assert queue.tickets() == []
        assert queue.workers() == []  # unregistered on clean exit

    def test_idle_timeout_exit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        worker = Worker(store, poll_interval=0.02, heartbeat_interval=0.1,
                        idle_timeout=0.1)
        started = time.time()
        assert worker.run() == 0
        assert time.time() - started < 10.0

    def test_stale_ticket_for_stored_key_is_retired(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = JobQueue.for_store(store)
        spec = trace_spec("tp2d", "small")
        paper_trace("tp2d", "small", store=store)  # already computed
        queue.enqueue(spec)
        worker = Worker(store, queue, poll_interval=0.02,
                        heartbeat_interval=0.1, idle_timeout=0.2)
        assert worker.run() == 0  # nothing to compute
        assert queue.tickets() == []

    def test_corrupt_ticket_records_failure(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = JobQueue.for_store(store)
        spec = trace_spec("tp2d", "small")
        queue.enqueue(spec)
        # Corrupt the ticket: spec payload that hashes to a different key.
        ticket = queue.read_ticket(spec.key())
        ticket["spec"]["app"] = "bl2d"
        queue._write_json(queue.ticket_path(spec.key()), ticket)
        worker = Worker(store, queue, poll_interval=0.02,
                        heartbeat_interval=0.1, idle_timeout=0.3)
        worker.run()
        assert worker.jobs_failed >= 1
        (record, *_) = queue.failures(spec.key())
        assert "corrupt ticket" in record["error"]


class TestClusterBackend:
    def test_threaded_cluster_matches_serial(self, tmp_path):
        specs = _sweep(apps=("tp2d", "bl2d"))
        serial = run_specs(specs, store=ResultStore(tmp_path / "ser"))
        store = ResultStore(tmp_path / "clu")
        queue = JobQueue.for_store(store)
        worker, thread = _threaded_worker(store, queue)
        try:
            results = run_specs(specs, store=store, backend=_fast_cluster())
            # The busy worker kept its registry heartbeat fresh while
            # draining back-to-back jobs (it unregisters on exit).
            assert queue.alive_workers(60.0)
        finally:
            worker.stop()
            thread.join(timeout=10.0)
        for ser, clu in zip(serial, results):
            assert ser.key == clu.key
            for name in ser.arrays:
                assert np.array_equal(ser.arrays[name], clu.arrays[name])
        # The broker cleaned the queue behind itself.
        assert queue.tickets() == []
        assert queue.leases() == []

    def test_verbose_status_lines(self, tmp_path):
        store = ResultStore(tmp_path / "clu")
        worker, thread = _threaded_worker(store)
        lines: list[str] = []
        try:
            run_specs(_sweep(), store=store, backend=_fast_cluster(),
                      verbose=True, progress=lines.append)
        finally:
            worker.stop()
            thread.join(timeout=10.0)
        assert any("enqueued" in line for line in lines)
        assert any("queued" in line and "leased" in line for line in lines)

    def test_stale_lease_is_requeued(self, tmp_path):
        # A lease left by a dead worker (old heartbeat, no process
        # behind it) must expire and the job complete elsewhere.
        specs = _sweep(partitioners=("nature+fable",))
        store = ResultStore(tmp_path / "clu")
        queue = JobQueue.for_store(store)
        stale_key = specs[0].inputs()[0].key()  # the trace job
        assert queue.claim(stale_key, "ghost", attempt=0,
                           now=time.time() - 3600.0)
        worker, thread = _threaded_worker(store, queue)
        lines: list[str] = []
        try:
            results = run_specs(
                specs, store=store,
                backend=_fast_cluster(lease_timeout=0.5),
                progress=lines.append,
            )
        finally:
            worker.stop()
            thread.join(timeout=10.0)
        assert results[0].arrays["step"].size > 0
        assert any("lease expired: requeued" in line for line in lines)
        assert any("ghost" in line for line in lines)

    def test_retry_cap_reports_failing_spec(self, tmp_path, monkeypatch):
        specs = _sweep()  # two sims, one shared trace
        poisoned = specs[0]
        monkeypatch.setenv(FAIL_KEYS_ENV, poisoned.key())
        store = ResultStore(tmp_path / "clu")
        queue = JobQueue.for_store(store)
        worker, thread = _threaded_worker(store, queue)
        try:
            with pytest.raises(ClusterJobError) as excinfo:
                run_specs(specs, store=store,
                          backend=_fast_cluster(max_attempts=2))
        finally:
            worker.stop()
            thread.join(timeout=10.0)
        message = str(excinfo.value)
        assert poisoned.label() in message
        assert poisoned.key()[:12] in message
        assert "injected failure" in message
        # The cap bounded the attempts, each one on the record.
        assert len(queue.failures(poisoned.key())) == 2
        assert excinfo.value.failures[poisoned.key()]
        # The healthy sibling job still completed.
        assert store.has(specs[1].key())

    def test_force_recomputes_through_cluster(self, tmp_path):
        specs = _sweep(partitioners=("nature+fable",))
        store = ResultStore(tmp_path / "clu")
        warm = run_specs(specs, store=store)  # serial warm-up
        worker, thread = _threaded_worker(store)
        try:
            forced = run_specs(specs, store=store,
                               backend=_fast_cluster(), force=True)
        finally:
            worker.stop()
            thread.join(timeout=10.0)
        # The forced sim really re-executed on a worker (no silent
        # store-hit), and reproduced the same bits.
        assert worker.jobs_done == 1
        for old, new in zip(warm, forced):
            assert old.key == new.key
            for name in old.arrays:
                assert np.array_equal(old.arrays[name], new.arrays[name])

    def test_no_workers_stalls_with_diagnosis(self, tmp_path):
        store = ResultStore(tmp_path / "clu")
        lines: list[str] = []
        backend = _fast_cluster(stall_timeout=0.6, lease_timeout=0.5)
        with pytest.raises(RuntimeError, match="stalled"):
            run_specs(_sweep(), store=store, backend=backend,
                      progress=lines.append)
        assert any("no alive workers" in line for line in lines)

    def test_placement_report(self, tmp_path):
        store = ResultStore(tmp_path / "clu")
        queue = JobQueue.for_store(store)
        queue.register_worker("w-alpha")
        backend = _fast_cluster(workers=2)
        from repro.engine import build_plan

        plan = build_plan(_sweep(), store)
        lines = backend.placement(plan, store)
        text = "\n".join(lines)
        assert "shared queue" in text
        assert "w-alpha" in text
        assert "auto-spawn 2" in text


class TestClusterProcesses:
    """End-to-end tests over real `repro worker` subprocesses."""

    def test_autospawned_cluster_store_bit_identical(self, tmp_path):
        specs = _sweep(apps=("tp2d", "bl2d"))
        run_specs(specs, store=ResultStore(tmp_path / "ser"),
                  backend="serial")
        clu = ResultStore(tmp_path / "clu")
        run_specs(specs, store=clu,
                  backend=_fast_cluster(workers=2, stall_timeout=180.0))
        assert _store_file_hashes(ResultStore(tmp_path / "ser")) == (
            _store_file_hashes(clu)
        )

    def test_sigkilled_worker_job_requeued_to_completion(self, tmp_path):
        specs = _sweep(apps=("tp2d", "bl2d"))
        run_specs(specs, store=ResultStore(tmp_path / "ser"),
                  backend="serial")
        store = ResultStore(tmp_path / "clu")
        queue = JobQueue.for_store(store)
        # A kamikaze worker that SIGKILLs itself after its first claim,
        # while holding the lease — plus one healthy auto-spawned worker.
        kamikaze = _spawn_worker(store.root, "--die-after-claims", "1")
        try:
            deadline = time.time() + 60.0
            while not queue.alive_workers(30.0):
                assert time.time() < deadline, "kamikaze never registered"
                time.sleep(0.05)
            lines: list[str] = []
            backend = _fast_cluster(
                workers=1, lease_timeout=1.5, poll_interval=0.1,
                stall_timeout=180.0,
            )
            run_specs(specs, store=store, backend=backend,
                      progress=lines.append)
        finally:
            kamikaze.wait(timeout=30.0)
        # The kamikaze really did die mid-job, by its own SIGKILL...
        assert kamikaze.returncode == -9
        # ...yet the sweep converged: every job completed exactly once,
        # bit-identical to the serial store.
        assert any("lease expired: requeued" in line for line in lines)
        assert _store_file_hashes(ResultStore(tmp_path / "ser")) == (
            _store_file_hashes(store)
        )
        assert queue.tickets() == []

    def test_worker_cli_idle_exit(self, tmp_path):
        proc = _spawn_worker(tmp_path / "empty-store", "--idle-timeout", "0.2")
        assert proc.wait(timeout=60.0) == 0


class TestStoreHardening:
    def _stored_sim(self, tmp_path) -> tuple[ResultStore, str]:
        store = ResultStore(tmp_path / "store")
        spec = sim_spec("tp2d", "small", nprocs=NPROCS)
        run_spec(spec, store=store)
        return store, spec.key()

    def test_truncated_series_is_a_miss(self, tmp_path):
        store, key = self._stored_sim(tmp_path)
        series = store.entry_dir(key) / "series.npz"
        series.write_bytes(series.read_bytes()[:100])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get_result(key) is None
        assert not store.has(key)  # husk retired: next publish repairs

    def test_missing_series_is_a_miss(self, tmp_path):
        store, key = self._stored_sim(tmp_path)
        (store.entry_dir(key) / "series.npz").unlink()
        with pytest.warns(RuntimeWarning, match="missing"):
            assert store.get_result(key) is None

    def test_run_spec_recomputes_after_corruption(self, tmp_path):
        store, key = self._stored_sim(tmp_path)
        before = store.get_result(key)
        series = store.entry_dir(key) / "series.npz"
        series.write_bytes(b"not a zipfile")
        with pytest.warns(RuntimeWarning):
            after = run_spec(sim_spec("tp2d", "small", nprocs=NPROCS),
                             store=store)
        assert np.array_equal(before.arrays["time"], after.arrays["time"])
        assert store.has(key)  # repaired in place
        result = store.get_result(key)
        assert result is not None

    def test_truncated_trace_regenerates(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace = paper_trace("tp2d", "small", store=store)
        key = trace_spec("tp2d", "small").key()
        path = store.entry_dir(key) / "trace.json.gz"
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        clear_trace_cache(store=store, memory_only=True)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            regenerated = paper_trace("tp2d", "small", store=store)
        assert regenerated.name == trace.name
        assert len(regenerated) == len(trace)
        # The republished artifact is whole again.
        assert store.entry_dir(key).joinpath("trace.json.gz").read_bytes() == payload

    def test_partially_deleted_trace_entry_regenerates(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        paper_trace("tp2d", "small", store=store)
        key = trace_spec("tp2d", "small").key()
        (store.entry_dir(key) / "trace.json.gz").unlink()
        clear_trace_cache(store=store, memory_only=True)
        with pytest.warns(RuntimeWarning, match="missing"):
            paper_trace("tp2d", "small", store=store)
        assert (store.entry_dir(key) / "trace.json.gz").is_file()

    def test_publish_over_metaless_husk(self, tmp_path):
        store, key = self._stored_sim(tmp_path)
        (store.entry_dir(key) / "meta.json").unlink()
        assert not store.has(key)
        run_spec(sim_spec("tp2d", "small", nprocs=NPROCS), store=store)
        assert store.has(key)

    def test_verify_reports_and_removes(self, tmp_path):
        store, key = self._stored_sim(tmp_path)
        trace_key = trace_spec("tp2d", "small").key()
        assert store.verify() == []
        # Corrupt the sim series, the trace artifact, and strand a stage.
        (store.entry_dir(key) / "series.npz").write_bytes(b"junk")
        gz = store.entry_dir(trace_key) / "trace.json.gz"
        gz.write_bytes(gz.read_bytes()[:24])
        stray = store.root / "tmp" / "deadbeef.1234"
        stray.mkdir(parents=True)
        problems = store.verify()
        kinds = sorted(p["problem"].split(":")[0] for p in problems)
        assert len(problems) == 3
        assert any("series.npz" in p["problem"] for p in problems)
        assert any("trace.json.gz" in p["problem"] for p in problems)
        assert any("staging" in p["problem"] for p in problems)
        assert all(not p["removed"] for p in problems), kinds
        removed = store.verify(remove=True)
        assert all(p["removed"] for p in removed)
        assert store.verify() == []
        assert not store.has(key)

    def test_verify_flags_unparsable_meta(self, tmp_path):
        store, key = self._stored_sim(tmp_path)
        (store.entry_dir(key) / "meta.json").write_text("{nope", "utf-8")
        (problem,) = store.verify()
        assert problem["key"] == key
        assert "unparsable meta.json" in problem["problem"]


class TestBackendCLI:
    def test_sweep_backend_serial_verbose(self, tmp_path, capsys):
        code = cli.main([
            "sweep", "--scale", "small", "--apps", "tp2d",
            "--partitioners", "nature+fable", "--nprocs", str(NPROCS),
            "--backend", "serial", "--verbose",
            "--cache-dir", str(tmp_path / "store"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend: serial" in out
        assert "done" in out

    def test_workers_without_cluster_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--workers needs"):
            cli.main([
                "sweep", "--scale", "small", "--apps", "tp2d",
                "--workers", "2",
                "--cache-dir", str(tmp_path / "store"),
            ])
        with pytest.raises(SystemExit, match="--workers needs"):
            cli.main([
                "sweep", "--scale", "small", "--apps", "tp2d",
                "--backend", "process", "--workers", "2",
                "--cache-dir", str(tmp_path / "store"),
            ])

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown backend"):
            cli.main([
                "sweep", "--scale", "small", "--apps", "tp2d",
                "--backend", "quantum",
                "--cache-dir", str(tmp_path / "store"),
            ])

    def test_plan_placement_report(self, tmp_path, capsys):
        code = cli.main([
            "plan", "--scale", "small", "--apps", "tp2d",
            "--partitioners", "suite", "--backend", "cluster",
            "--cache-dir", str(tmp_path / "store"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "placement:" in out
        assert "shared queue" in out
        assert "no alive workers" in out

    def test_plan_placement_process_shards(self, tmp_path, capsys):
        code = cli.main([
            "plan", "--scale", "small", "--apps", "tp2d,bl2d",
            "--partitioners", "suite", "--backend", "process",
            "--n-jobs", "3",
            "--cache-dir", str(tmp_path / "store"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pool of 3 local worker processes" in out
        assert "shards" in out

    def test_cache_verify_cli(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store = ResultStore(store_dir)
        spec = sim_spec("tp2d", "small", nprocs=NPROCS)
        run_spec(spec, store=store)
        assert cli.main(["cache", "verify", "--cache-dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "sound" in out
        (store.entry_dir(spec.key()) / "series.npz").write_bytes(b"junk")
        assert cli.main(["cache", "verify", "--cache-dir", str(store_dir)]) == 1
        out = capsys.readouterr().out
        assert "series.npz" in out
        assert "--remove" in out
        assert cli.main([
            "cache", "verify", "--remove", "--cache-dir", str(store_dir)
        ]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert cli.main(["cache", "verify", "--cache-dir", str(store_dir)]) == 0
