"""The store's zero-copy read plane: mmap loads, LRU cache, invalidation.

``ResultStore.get_result``/``get_trace`` keep a per-process LRU of
decoded entries (``REPRO_STORE_CACHE``) in front of lazy memory-mapped
``series.npz`` loads (``REPRO_STORE_MMAP``).  The invariants under test:

* a warm read is a cache hit even through a *fresh* store instance
  (the cache is per-process, keyed by root + key);
* mmap-assisted cold loads are value- and dtype-identical to eagerly
  loaded ones; returned arrays are materialized stable snapshots, so a
  later in-place rewrite of the entry never mutates results already
  handed out;
* every hit re-validates the entry's stat signature, so on-disk
  overwrites and corruption are observed exactly like cold reads;
* eviction respects the configured capacity, and mtime recency touches
  are throttled to once per entry per interval.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ResultStore, RunResult, sim_spec, trace_spec
from repro.engine.store import clear_read_cache, read_cache_stats


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts and ends with an empty read cache."""
    clear_read_cache()
    yield
    clear_read_cache()


def _make_result(nprocs: int = 4, value: float = 1.0) -> RunResult:
    spec = sim_spec(
        app="tp2d", scale="small", partitioner="nature+fable", nprocs=nprocs
    )
    arrays = {
        "load_imbalance": np.linspace(value, value + 1.0, 7, dtype=np.float64),
        "step": np.arange(7, dtype=np.int32),
    }
    return RunResult(
        spec=spec, key=spec.key(), meta={"nsteps": 7}, arrays=arrays
    )


def test_warm_read_hits_cache_across_store_instances(tmp_path):
    result = _make_result()
    ResultStore(tmp_path).put_result(result)
    first = ResultStore(tmp_path).get_result(result.key)
    second = ResultStore(tmp_path).get_result(result.key)
    stats = read_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1, stats
    assert first is not None and second is not None
    for name, want in result.arrays.items():
        np.testing.assert_array_equal(np.asarray(first.arrays[name]), want)
        np.testing.assert_array_equal(np.asarray(second.arrays[name]), want)
        assert first.arrays[name].dtype == want.dtype
        assert second.arrays[name].dtype == want.dtype


def test_mmap_arrays_match_eager_load(tmp_path, monkeypatch):
    result = _make_result()
    ResultStore(tmp_path).put_result(result)
    monkeypatch.delenv("REPRO_STORE_MMAP", raising=False)
    mapped = ResultStore(tmp_path).get_result(result.key)
    assert read_cache_stats()["mmap_loads"] == 1, (
        "mmap path never engaged on an uncompressed npz"
    )
    # Returned arrays are materialized snapshots, never live mappings.
    assert not any(
        isinstance(a, np.memmap) for a in mapped.arrays.values()
    )
    clear_read_cache()
    monkeypatch.setenv("REPRO_STORE_MMAP", "off")
    eager = ResultStore(tmp_path).get_result(result.key)
    assert read_cache_stats()["mmap_loads"] == 0
    for name in result.arrays:
        assert not isinstance(eager.arrays[name], np.memmap)
        np.testing.assert_array_equal(
            np.asarray(mapped.arrays[name]), eager.arrays[name]
        )
        assert mapped.arrays[name].dtype == eager.arrays[name].dtype


def test_hit_revalidates_against_disk(tmp_path):
    result = _make_result()
    store = ResultStore(tmp_path)
    store.put_result(result)
    assert store.get_result(result.key) is not None  # populate the cache
    # Corrupt the series behind the cache's back: the next read must
    # observe the stat-signature mismatch, warn and miss — never serve
    # the stale record.
    series = store.entry_dir(result.key) / "series.npz"
    series.write_bytes(b"not a zipfile")
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert ResultStore(tmp_path).get_result(result.key) is None
    assert read_cache_stats()["hits"] == 0


def test_overwrite_evicts_stale_record(tmp_path):
    store = ResultStore(tmp_path)
    store.put_result(_make_result(value=1.0))
    key = _make_result().key
    assert store.get_result(key).arrays["load_imbalance"][0] == 1.0
    store.put_result(_make_result(value=5.0), overwrite=True)
    warm = ResultStore(tmp_path).get_result(key)
    assert warm.arrays["load_imbalance"][0] == 5.0


def test_eviction_respects_capacity(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_CACHE", "2")
    store = ResultStore(tmp_path)
    keys = []
    for nprocs in (2, 4, 8):
        result = _make_result(nprocs=nprocs)
        store.put_result(result)
        keys.append(result.key)
    for key in keys:
        assert store.get_result(key) is not None
    stats = read_cache_stats()
    assert stats["misses"] == 3 and stats["evictions"] >= 1, stats
    # The oldest entry was evicted: re-reading it is another miss.
    assert store.get_result(keys[0]) is not None
    assert read_cache_stats()["misses"] == 4


def test_cache_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_CACHE", "0")
    result = _make_result()
    store = ResultStore(tmp_path)
    store.put_result(result)
    assert store.get_result(result.key) is not None
    assert store.get_result(result.key) is not None
    assert read_cache_stats()["hits"] == 0


def test_bad_env_values_raise(tmp_path, monkeypatch):
    result = _make_result()
    store = ResultStore(tmp_path)
    store.put_result(result)
    clear_read_cache()
    monkeypatch.setenv("REPRO_STORE_CACHE", "many")
    with pytest.raises(ValueError):
        store.get_result(result.key)
    monkeypatch.setenv("REPRO_STORE_CACHE", "64")
    monkeypatch.setenv("REPRO_STORE_MMAP", "sometimes")
    with pytest.raises(ValueError):
        store.get_result(result.key)


def test_trace_reads_share_one_decoded_object(tmp_path, small_traces):
    trace = small_traces["tp2d"]
    spec = trace_spec("tp2d", "small")
    store = ResultStore(tmp_path)
    store.put_trace(spec, trace, {"nsteps": len(trace)})
    t1 = ResultStore(tmp_path).get_trace(spec.key())
    t2 = ResultStore(tmp_path).get_trace(spec.key())
    stats = read_cache_stats()
    assert t1 is not None and t2 is t1, "trace hit should share the object"
    assert stats["misses"] == 1 and stats["hits"] == 1, stats


def test_touch_is_throttled(tmp_path):
    result = _make_result()
    store = ResultStore(tmp_path)
    store.put_result(result)
    assert store._touch(result.key) is True
    assert store._touch(result.key) is False  # within the interval
    clear_read_cache()  # resets the throttle memo too
    assert store._touch(result.key) is True


def test_remove_evicts_cached_entry(tmp_path):
    result = _make_result()
    store = ResultStore(tmp_path)
    store.put_result(result)
    assert store.get_result(result.key) is not None
    assert store.remove(result.key)
    assert ResultStore(tmp_path).get_result(result.key) is None
    assert read_cache_stats()["hits"] == 0
