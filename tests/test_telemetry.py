"""Telemetry: spans, sinks, run profiles, and the no-hash-impact invariant.

The load-bearing guarantees under test:

* **No hash impact** — a sweep executed with ``REPRO_TELEMETRY`` on
  produces bit-identical spec keys, series, and store artifact bytes to
  the same sweep with telemetry off.
* **Determinism** — an injectable fake clock makes two identical
  recordings byte-identical, line for line.
* **Well-formed trees** — event logs written by a cluster sweep that
  survived a SIGKILLed worker still parse, with every closed span
  enclosed by its parent.
* **Chrome schema** — the trace-event projection is loadable JSON with
  the fields chrome://tracing requires.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    ClusterBackend,
    JobQueue,
    ResultStore,
    Worker,
    cli,
    run_spec,
    run_specs,
    sim_spec,
)
from repro.telemetry import (
    TELEMETRY_ENV,
    TelemetryRecorder,
    activate,
    active_recorder,
    chrome_trace,
    deactivate,
    find_run_profiles,
    load_run_profile,
    profile_tree,
    read_jsonl,
    recording,
    render_cluster_status,
    render_profile,
    session,
    span,
    telemetry_active,
    telemetry_mode,
)

NPROCS = 4


class FakeClock:
    """Monotonic stub: each call advances by a fixed tick."""

    def __init__(self, tick: float = 0.25):
        self.t = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.t += self.tick
        return self.t


def _sweep(apps=("tp2d",), partitioners=("nature+fable", "patch-lpt")):
    return [
        sim_spec(app, "small", nprocs=NPROCS, partitioner=part)
        for app in apps
        for part in partitioners
    ]


def _store_file_hashes(store: ResultStore) -> dict:
    """sha256 of every artifact file, keyed by (entry key, file name)."""
    out = {}
    for doc in store.entries():
        entry = store.entry_dir(doc["key"])
        for path in sorted(p for p in entry.iterdir() if p.is_file()):
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            out[(doc["key"], path.name)] = digest
    return out


# ---------------------------------------------------------------------------
# recorder core
# ---------------------------------------------------------------------------

class TestRecorder:
    def test_fake_clock_is_fully_deterministic(self):
        def scenario() -> list[str]:
            rec = TelemetryRecorder(clock=FakeClock(), meta={"run": 1})
            with rec.span("outer", cat="t", depth=0):
                rec.counter("events", 3)
                with rec.span("inner", cat="t"):
                    rec.gauge("level", 0.5)
            return [json.dumps(e, sort_keys=True) for e in rec.events]

        assert scenario() == scenario()

    def test_span_tree_parenting_and_close_order(self):
        rec = TelemetryRecorder(clock=FakeClock())
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                rec.counter("ticks", 1)
        names = [e["name"] for e in rec.events]
        # Children close (and therefore log) before their parents.
        assert names == ["ticks", "inner", "outer"]
        by_name = {e["name"]: e for e in rec.events}
        assert by_name["inner"]["parent"] == outer.id
        assert by_name["ticks"]["parent"] == inner.id
        assert by_name["outer"]["parent"] == 0
        assert by_name["inner"]["dur"] >= 0.0
        # The parent interval encloses the child's.
        o, i = by_name["outer"], by_name["inner"]
        assert o["ts"] <= i["ts"]
        assert o["ts"] + o["dur"] >= i["ts"] + i["dur"]

    def test_error_flag_on_raising_span(self):
        rec = TelemetryRecorder(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        (event,) = rec.events
        assert event["error"] is True

    def test_module_level_span_is_free_when_off(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert telemetry_mode() == "off"
        assert not telemetry_active()
        # The off-path returns one shared no-op singleton: no allocation,
        # no recording — the <3% disabled-overhead budget.
        a, b = span("anything", cat="x"), span("other")
        assert a is b
        with a as sp:
            sp.annotate(ignored=True)

    def test_activate_is_exclusive(self):
        rec = TelemetryRecorder(clock=FakeClock())
        activate(rec)
        try:
            assert active_recorder() is rec
            with pytest.raises(RuntimeError):
                activate(TelemetryRecorder(clock=FakeClock()))
        finally:
            deactivate()
        assert active_recorder() is None

    def test_recording_harness_scopes_the_global(self):
        with recording(clock=FakeClock()) as rec:
            assert telemetry_active()
            with span("scoped", cat="t"):
                pass
            assert rec.events[0]["name"] == "scoped"
        assert not telemetry_active()


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------

class TestSinks:
    def _recorded(self) -> TelemetryRecorder:
        rec = TelemetryRecorder(clock=FakeClock(), meta={"session": "t"})
        with rec.span("outer", cat="engine"):
            rec.counter("queue.depth", 2)
            with rec.span("inner", cat="kernel", step=3):
                pass
        return rec

    def test_chrome_trace_schema(self):
        doc = chrome_trace(self._recorded(), pid=1234)
        # Loadable JSON with the trace-event required fields.
        doc = json.loads(json.dumps(doc))
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"] == {"session": "t"}
        assert len(doc["traceEvents"]) == 3
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "C")
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["cat"], str)
            assert event["pid"] == 1234
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0.0  # microseconds
            assert isinstance(event["args"], dict)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"] == {"queue.depth": 2}

    def test_session_writes_jsonl_and_chrome_trace(self, tmp_path):
        with session(tmp_path, name="unit test!", mode="chrome",
                     clock=FakeClock(), meta={"suite": "sinks"}) as rec:
            assert active_recorder() is rec
            with span("work", cat="t"):
                pass
        logs = list((tmp_path / "telemetry").glob("*.jsonl"))
        traces = list((tmp_path / "telemetry").glob("*.trace.json"))
        assert len(logs) == 1 and len(traces) == 1
        # The unsafe characters of the session name were sanitized away.
        assert "!" not in logs[0].name and " " not in logs[0].name
        events = read_jsonl(logs[0])
        assert events[0]["type"] == "meta"
        assert events[0]["suite"] == "sinks"
        assert [e["name"] for e in events[1:]] == ["work"]
        trace_doc = json.loads(traces[0].read_text(encoding="utf-8"))
        assert [e["name"] for e in trace_doc["traceEvents"]] == ["work"]

    def test_session_off_is_transparent(self, tmp_path):
        with session(tmp_path, name="noop", mode="off") as rec:
            assert rec is None
            assert not telemetry_active()
        assert not (tmp_path / "telemetry").exists()

    def test_nested_sessions_share_the_outer_recorder(self, tmp_path):
        with session(tmp_path, name="outer", mode="json") as outer:
            with session(tmp_path, name="inner", mode="json") as inner:
                assert inner is outer
        assert len(list((tmp_path / "telemetry").glob("*.jsonl"))) == 1


# ---------------------------------------------------------------------------
# the no-hash-impact invariant
# ---------------------------------------------------------------------------

class TestNoHashImpact:
    def test_sweep_is_bit_identical_with_telemetry_on(
        self, tmp_path, monkeypatch
    ):
        specs = _sweep()
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        keys_off = [spec.key() for spec in specs]
        store_off = ResultStore(tmp_path / "off")
        results_off = run_specs(specs, store=store_off)

        monkeypatch.setenv(TELEMETRY_ENV, "chrome")
        keys_on = [spec.key() for spec in specs]
        store_on = ResultStore(tmp_path / "on")
        results_on = run_specs(specs, store=store_on)

        # Spec keys, series, and artifact bytes: all bit-identical.
        assert keys_on == keys_off
        for off, on in zip(results_off, results_on):
            assert off.key == on.key
            for name in off.arrays:
                assert np.array_equal(off.arrays[name], on.arrays[name])
        assert _store_file_hashes(store_off) == _store_file_hashes(store_on)
        # ... while the instrumented run really did record something.
        assert find_run_profiles(store_on.root)
        assert not find_run_profiles(store_off.root)
        # Telemetry artifacts never surface as store entries.
        assert {d["key"] for d in store_off.entries()} == (
            {d["key"] for d in store_on.entries()}
        )


# ---------------------------------------------------------------------------
# run profiles and the CLI surfaces
# ---------------------------------------------------------------------------

class TestProfiles:
    def test_run_scope_profile_and_cli(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(TELEMETRY_ENV, "json")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        spec = sim_spec("tp2d", "small", nprocs=NPROCS,
                        partitioner="nature+fable")
        store = ResultStore(tmp_path / "store")
        run_spec(spec, store=store)

        doc = load_run_profile(store.root, spec.key()[:12])
        assert doc["key"] == spec.key()
        assert doc["wall_s"] > 0.0
        names = {e["name"] for e in doc["spans"] if e["type"] == "span"}
        # The tree reaches from the run root down into the kernels.
        assert {"run", "sim.partition", "sim.measure_step"} <= names
        assert doc["pair_counters"]["queries"] > 0
        tree = profile_tree(doc["spans"])
        assert tree[0]["name"] == "run"
        rendered = render_profile(doc)
        assert "sim.measure_step" in rendered and "pruning" in rendered

        assert cli.main(["profile", spec.key()[:12],
                         "--cache-dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert spec.key()[:12] in out and "sim.partition" in out
        assert cli.main(["profile", spec.key()[:12], "--json",
                         "--cache-dir", str(store.root)]) == 0
        assert json.loads(capsys.readouterr().out)["key"] == spec.key()

        assert cli.main(["report", "--timings",
                         "--cache-dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "profiled runs" in out and "sim.measure_step" in out

    def test_profile_cli_errors(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        assert cli.main(["profile", "deadbeef",
                         "--cache-dir", str(store.root)]) == 1
        assert "no run profile" in capsys.readouterr().err
        assert cli.main(["report", "--timings",
                         "--cache-dir", str(store.root)]) == 1
        assert "no run profiles" in capsys.readouterr().err

    def test_failed_run_leaves_no_profile(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "json")
        store = ResultStore(tmp_path / "store")
        spec = sim_spec("tp2d", "small", nprocs=NPROCS,
                        partitioner="nature+fable")
        from repro.engine.backends.worker import FAIL_KEYS_ENV

        monkeypatch.setenv(FAIL_KEYS_ENV, spec.key())
        worker = Worker(store)
        queue = worker.queue
        queue.enqueue(spec, max_attempts=1)
        # Drive one claim/fail cycle by hand.
        ticket = worker._claim_next()
        assert ticket is not None
        worker._process(ticket)
        assert worker.jobs_failed == 1
        assert find_run_profiles(store.root) == []


# ---------------------------------------------------------------------------
# cluster end-to-end: profiles, top, crash-surviving span trees
# ---------------------------------------------------------------------------

def _worker_env(extra: dict | None = None) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.update(extra or {})
    return env


def _spawn_worker(
    store_root, *extra: str, env_extra: dict | None = None
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "worker",
        "--cache-dir", str(store_root),
        "--poll-interval", "0.05",
        "--heartbeat-interval", "0.2",
        "--idle-timeout", "60",
        "--quiet",
    ]
    return subprocess.Popen(
        command + list(extra),
        env=_worker_env(env_extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _assert_well_formed(events: list[dict]) -> None:
    """Schema + tree invariants of one JSONL event log."""
    assert events, "empty event log"
    assert events[0]["type"] == "meta"
    spans = [e for e in events[1:] if e["type"] == "span"]
    ids = [e["id"] for e in spans]
    assert len(ids) == len(set(ids)), "duplicate span ids"
    by_id = {e["id"]: e for e in spans}
    for e in events[1:]:
        assert e["type"] in ("span", "counter", "gauge")
        assert e["ts"] >= 0.0
        if e["type"] == "span":
            assert e["dur"] >= 0.0
            parent = by_id.get(e["parent"])
            if parent is not None:
                # A closed parent encloses its closed children.
                assert parent["ts"] <= e["ts"] + 1e-9
                assert (parent["ts"] + parent["dur"]
                        >= e["ts"] + e["dur"] - 1e-9)


class TestClusterTelemetry:
    def test_cluster_sweep_profiles_and_top(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(TELEMETRY_ENV, "json")
        specs = _sweep()
        store = ResultStore(tmp_path / "clu")
        queue = JobQueue.for_store(store)
        worker = Worker(store, queue, poll_interval=0.02,
                        heartbeat_interval=0.1)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        backend = ClusterBackend(lease_timeout=10.0, poll_interval=0.05,
                                 stall_timeout=60.0)
        try:
            results = run_specs(specs, store=store, backend=backend)
        finally:
            worker.stop()
            thread.join(timeout=10.0)
        assert [r.key for r in results] == [s.key() for s in specs]

        # Every executed job left a run profile `repro profile` can render.
        profiled = {p.stem for p in find_run_profiles(store.root)}
        assert {s.key() for s in specs} <= profiled
        assert cli.main(["profile", specs[0].key()[:12],
                         "--cache-dir", str(store.root)]) == 0
        assert "worker.job" not in capsys.readouterr().out  # run subtree only

        # `repro top` renders the queue/worker state of the same store.
        queue.register_worker("w-test")
        try:
            assert cli.main(["top", "--cache-dir", str(store.root)]) == 0
            out = capsys.readouterr().out
            assert "w-test" in out and "alive" in out
            assert "0 open tickets" in out
        finally:
            queue.unregister_worker("w-test")

    def test_span_trees_survive_worker_crash_and_requeue(self, tmp_path):
        specs = _sweep(apps=("tp2d", "bl2d"))
        store = ResultStore(tmp_path / "clu")
        queue = JobQueue.for_store(store)
        telemetry = {"REPRO_TELEMETRY": "json"}
        # A kamikaze worker SIGKILLs itself after its first claim while
        # holding the lease; a healthy worker finishes the sweep.
        kamikaze = _spawn_worker(store.root, "--die-after-claims", "1",
                                 env_extra=telemetry)
        healthy = _spawn_worker(store.root, env_extra=telemetry)
        try:
            deadline = time.time() + 60.0
            while not queue.alive_workers(30.0):
                assert time.time() < deadline, "workers never registered"
                time.sleep(0.05)
            backend = ClusterBackend(lease_timeout=1.5, poll_interval=0.1,
                                     stall_timeout=180.0, max_attempts=3)
            results = run_specs(specs, store=store, backend=backend)
        finally:
            kamikaze.wait(timeout=30.0)
            healthy.terminate()
            healthy.wait(timeout=30.0)
        assert kamikaze.returncode == -9
        assert [r.key for r in results] == [s.key() for s in specs]

        # Every event log the cluster left behind — including anything
        # the crashed worker managed to flush — parses and nests.
        logs = list((Path(store.root) / "telemetry").glob("*.jsonl"))
        assert logs, "cluster sweep wrote no event logs"
        all_spans: list[dict] = []
        for log in logs:
            events = read_jsonl(log)
            _assert_well_formed(events)
            all_spans += [e for e in events if e.get("type") == "span"]
        jobs = [e for e in all_spans if e["name"] == "worker.job"]
        done = [e for e in jobs if e["attrs"].get("outcome") == "completed"]
        # The healthy worker completed every job exactly once (the
        # kamikaze died before executing its claim).
        expected = {s.key()[:12] for s in specs} | {
            dep.key()[:12] for s in specs for dep in s.inputs()
        }
        assert len(done) == len(expected)
        assert {e["attrs"]["key"] for e in done} == expected

    def test_top_watch_snapshot_renderer(self, tmp_path):
        # render_cluster_status is what --watch redraws; exercise the
        # lease/waiting/failure sections without a live cluster.
        store = ResultStore(tmp_path / "store")
        queue = JobQueue.for_store(store)
        spec = _sweep()[0]
        queue.enqueue(spec, max_attempts=3)
        queue.register_worker("w-1")
        assert queue.claim(spec.key(), "w-1", attempt=0)
        queue.fail(spec.key(), "w-1", 0, "trace")
        out = render_cluster_status(store, queue, lease_timeout=30.0)
        assert "1 open tickets" in out
        assert "w-1" in out
        assert spec.key()[:12] in out
        assert "failures (1 records)" in out
