"""Render the reproduced figures as ASCII charts in the terminal.

Regenerates Figure 1 and Figures 4-7 at a quick scale and draws both
panels of each — the measured series superimposed with the model
penalties, as the paper's plots do.  Use scale="paper" (slower) for the
full 5-level, 100-step setup of section 5.1.1.

Run:  python examples/render_figures.py
"""

from repro.experiments import (
    FIGURE_APPS,
    figure1,
    figure_app,
    render_figure1,
    render_figure_app,
)

SCALE = "small"
NPROCS = 8

print(render_figure1(figure1(scale=SCALE, nprocs=NPROCS)))
print("\n" + "=" * 78 + "\n")
for number, app in sorted(FIGURE_APPS.items()):
    fig = figure_app(app, scale=SCALE, nprocs=NPROCS)
    print(render_figure_app(fig, figure_number=number))
    print("\n" + "=" * 78 + "\n")
