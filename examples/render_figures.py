"""Render the reproduced figures as ASCII charts in the terminal.

Regenerates Figure 1 and Figures 4-7 at a quick scale and draws both
panels of each — the measured series superimposed with the model
penalties, as the paper's plots do.  Use scale="paper" (slower) for the
full 5-level, 100-step setup of section 5.1.1.

All replays are submitted to the experiment engine in one sharded batch
up front: the simulator and model runs land in the content-addressed
store (REPRO_CACHE_DIR, default ~/.cache/repro), the figures below are
assembled from stored series, and a second invocation of this script —
or of `python -m repro report` — renders without re-simulating anything.

Run:  python examples/render_figures.py
"""

from repro.engine import penalties_spec, run_specs, sim_spec
from repro.experiments import (
    FIGURE_APPS,
    figure1,
    figure_app,
    render_figure1,
    render_figure_app,
)

SCALE = "small"
NPROCS = 8
N_JOBS = 2


def main() -> None:
    specs = [sim_spec("bl2d", SCALE, nprocs=NPROCS)]  # Figure 1
    for app in FIGURE_APPS.values():  # Figures 4-7: replay + penalties
        specs.append(sim_spec(app, SCALE, nprocs=NPROCS))
        specs.append(penalties_spec(app, SCALE, nprocs=NPROCS))
    run_specs(specs, n_jobs=N_JOBS, progress=print)
    print()

    print(render_figure1(figure1(scale=SCALE, nprocs=NPROCS)))
    print("\n" + "=" * 78 + "\n")
    for number, app in sorted(FIGURE_APPS.items()):
        fig = figure_app(app, scale=SCALE, nprocs=NPROCS)
        print(render_figure_app(fig, figure_number=number))
        print("\n" + "=" * 78 + "\n")


# The guard matters: worker processes re-import this script on
# spawn-start platforms (macOS/Windows).
if __name__ == "__main__":
    main()
