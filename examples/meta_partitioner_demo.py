"""Fully dynamic PAC: the meta-partitioner selecting P at run time.

The conceptual Figure 2 of the paper, realized: at every regrid the state
sampler classifies the application + system state into the continuous
classification space, and the meta-partitioner selects and configures the
partitioner.  The demo compares the modeled execution time of the SC2D
(Scalarwave) workload — whose hierarchy oscillates between a flat base
grid and a deep stack — under static partitioners, the discrete ArMADA
octant baseline and the continuous meta-partitioner, on two different
machine scenarios.

The whole machines x schedules grid is one sharded engine sweep: every
replay is content-addressed, so re-running the demo (or a CLI sweep that
overlaps it, e.g. `python -m repro sweep --machines net-starved,cluster-2003
--partitioners all --scale small`) fetches the rows from the store.  The
classification trajectory at the end replays the meta-schedule in-process
to show the curve it followed.

Run:  python examples/meta_partitioner_demo.py
"""

from repro.engine import create, run_specs, sim_spec
from repro.experiments import paper_trace
from repro.meta import MetaScheduler
from repro.model import StateSampler
from repro.simulator import TraceSimulator

APP = "sc2d"
SCALE = "small"
NPROCS = 8
N_JOBS = 2

SCHEDULES = [
    ("nature+fable", "static"),
    ("domain-sfc-hilbert", "static"),
    ("armada-octant", "dynamic"),
    ("meta-partitioner", "dynamic"),
]
MACHINES = ["net-starved", "cluster-2003"]

def main() -> None:
    specs = [
        sim_spec(APP, SCALE, nprocs=NPROCS, partitioner=name, machine=machine)
        for machine in MACHINES
        for name, _ in SCHEDULES
    ]
    results = iter(run_specs(specs, n_jobs=N_JOBS, progress=print))

    trace = paper_trace(APP, SCALE)
    print(f"\ntrace '{trace.name}': {len(trace)} snapshots")

    for machine_name in MACHINES:
        machine = create("machine", machine_name)
        print(f"\n=== {machine_name} (comm/compute ratio "
              f"{machine.comm_compute_ratio():.1f}) ===")
        for name, kind in SCHEDULES:
            total = next(results).meta["total_execution_seconds"]
            print(f"{kind:<8} {name:<18} {total:8.3f} s")

    # Show the classification curve the meta-partitioner followed on the
    # balanced cluster (in-process: the schedule's history is the point).
    machine = create("machine", "cluster-2003")
    meta = MetaScheduler(sampler=StateSampler(machine=machine, nprocs=NPROCS))
    TraceSimulator(machine=machine).run_scheduled(trace, meta, NPROCS)
    print("\nclassification trajectory (first 8 regrids, cluster-2003):")
    for i, point in enumerate(meta.history[:8]):
        print(
            f"  regrid {i}: dim1={point.dim1:.2f} dim2={point.dim2:.2f} "
            f"dim3={point.dim3:.2f} -> octant {point.octant()}"
        )


# The guard matters: worker processes re-import this script on
# spawn-start platforms (macOS/Windows).
if __name__ == "__main__":
    main()
