"""Fully dynamic PAC: the meta-partitioner selecting P at run time.

The conceptual Figure 2 of the paper, realized: at every regrid the state
sampler classifies the application + system state into the continuous
classification space, and the meta-partitioner selects and configures the
partitioner.  The demo replays the SC2D (Scalarwave) trace — whose
hierarchy oscillates between a flat base grid and a deep 5-level stack —
on two different machines, and compares the modeled execution time against
static partitioner choices and the discrete ArMADA octant baseline.

Run:  python examples/meta_partitioner_demo.py
"""

from repro.apps import ScalarWave2D, TraceGenConfig, generate_trace
from repro.meta import ArmadaClassifier, MetaScheduler
from repro.model import StateSampler
from repro.partition import DomainSfcPartitioner, NaturePlusFable
from repro.simulator import MachineModel, TraceSimulator

NPROCS = 8

config = TraceGenConfig(
    base_shape=(32, 32), max_levels=4, nsteps=60, regrid_interval=4
)
trace = generate_trace(ScalarWave2D(shape=(128, 128)), config)
print(f"trace '{trace.name}': {len(trace)} snapshots")

machines = {
    "net-starved cluster": MachineModel(bandwidth_bytes_per_s=5.0e7),
    "balanced 2003 cluster": MachineModel(),
}

for label, machine in machines.items():
    sim = TraceSimulator(machine=machine)
    print(f"\n=== {label} (comm/compute ratio "
          f"{machine.comm_compute_ratio():.1f}) ===")

    # Static choices.
    for part in (NaturePlusFable(), DomainSfcPartitioner(curve="hilbert")):
        total = sim.run(trace, part, NPROCS).total_execution_seconds
        print(f"static {part.describe()['name']:<14} {total:8.3f} s")

    # Discrete octant baseline (ArMADA, section 3).
    armada = ArmadaClassifier()
    total = sim.run_scheduled(trace, armada, NPROCS).total_execution_seconds
    print(f"dynamic armada-octant  {total:8.3f} s "
          f"(octants visited: {sorted(set(armada.history))})")

    # Continuous meta-partitioner.
    meta = MetaScheduler(sampler=StateSampler(machine=machine, nprocs=NPROCS))
    total = sim.run_scheduled(trace, meta, NPROCS).total_execution_seconds
    print(f"dynamic meta           {total:8.3f} s")

    # Show the classification curve the meta-partitioner followed.
    print("classification trajectory (first 8 regrids):")
    for i, point in enumerate(meta.history[:8]):
        print(
            f"  regrid {i}: dim1={point.dim1:.2f} dim2={point.dim2:.2f} "
            f"dim3={point.dim3:.2f} -> octant {point.octant()}"
        )
