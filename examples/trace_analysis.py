"""Trace persistence and classification-trajectory analysis.

Shows the trace tooling a downstream user needs: generate traces for the
whole application suite, persist them as gzipped JSON, reload them, and
analyze each application's trajectory through the continuous
classification space (arc length = how dynamic the application state is;
octant transitions = how jittery the discrete ArMADA baseline would be on
the same input).

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.apps import APPLICATIONS, TraceGenConfig, generate_trace, make_application
from repro.experiments import workload_ndim
from repro.model import StateSampler
from repro.trace import Trace

NPROCS = 8


def config_for(ndim: int) -> TraceGenConfig:
    base = (16, 16) if ndim == 2 else (8, 8, 8)
    return TraceGenConfig(
        base_shape=base, max_levels=3, nsteps=40, regrid_interval=4
    )


sampler = StateSampler(nprocs=NPROCS)

workdir = Path(tempfile.mkdtemp(prefix="repro_traces_"))
print(f"writing traces to {workdir}\n")

print(f"{'app':<6} {'snaps':>6} {'cells min..max':>16} {'patches':>8} "
      f"{'arc len':>8} {'octant flips':>13} {'file kB':>8}")

for name in sorted(APPLICATIONS):
    ndim = workload_ndim(name)
    shadow = (64, 64) if ndim == 2 else (32, 32, 32)
    trace = generate_trace(make_application(name, shape=shadow), config_for(ndim))

    # Persist and reload — the penalties must survive the round trip.
    path = workdir / f"{name}.json.gz"
    trace.save(path)
    reloaded = Trace.load(path)
    assert reloaded.hierarchies() == trace.hierarchies()

    stats = trace.stats()
    trajectory = sampler.trajectory(reloaded)
    print(
        f"{name:<6} {stats.nsteps:>6d} "
        f"{str(stats.min_cells) + '..' + str(stats.max_cells):>16} "
        f"{stats.mean_patches:>8.1f} {trajectory.arc_length():>8.3f} "
        f"{trajectory.octant_transitions():>13d} "
        f"{path.stat().st_size / 1024:>8.1f}"
    )

print(
    "\narc length measures how far the application state travels through "
    "the classification space;\noctant flips count how often the discrete "
    "ArMADA baseline would switch partitioners on the same input —\nthe "
    "continuous space follows a smooth curve instead (section 4)."
)
