"""Quickstart: hierarchies, penalties, partitioning, measurement.

Builds two small SAMR grid hierarchies by hand (time-steps t-1 and t),
evaluates the paper's penalties ab initio, partitions the grid with the
hybrid Nature+Fable partitioner, and replays the pair through the
execution simulator.

Run:  python examples/quickstart.py
"""

from repro.geometry import Box
from repro.hierarchy import GridHierarchy, PatchLevel
from repro.model import (
    communication_penalty,
    dimension1,
    load_imbalance_penalty,
    migration_penalty,
)
from repro.partition import NaturePlusFable
from repro.simulator import TraceSimulator

NPROCS = 8

# ---------------------------------------------------------------------------
# 1. Two consecutive grid hierarchies: a refinement region that moved.
# ---------------------------------------------------------------------------
domain = Box((0, 0), (32, 32))  # 32x32 base grid

h_prev = GridHierarchy(
    domain,
    [
        PatchLevel(0, [domain], ratio=1),
        PatchLevel(1, [Box((16, 16), (40, 40))], ratio=2),  # level-1 patch
        PatchLevel(2, [Box((40, 40), (64, 64))], ratio=2),  # level-2 patch
    ],
)
h_cur = GridHierarchy(
    domain,
    [
        PatchLevel(0, [domain], ratio=1),
        PatchLevel(1, [Box((20, 20), (44, 44))], ratio=2),  # moved by 4
        PatchLevel(2, [Box((48, 48), (72, 72))], ratio=2),  # moved by 8
    ],
)
for h in (h_prev, h_cur):
    h.validate()

print(f"H_(t-1): {h_prev}")
print(f"H_t:     {h_cur}")

# ---------------------------------------------------------------------------
# 2. The paper's penalties, computed ab initio from the hierarchies alone.
# ---------------------------------------------------------------------------
beta_m = migration_penalty(h_prev, h_cur)  # dimension III (section 4.4)
beta_c = communication_penalty(h_cur, nprocs=NPROCS)
beta_l = load_imbalance_penalty(h_cur)
dim1 = dimension1(beta_l, beta_c)

print(f"\nbeta_m (data-migration penalty)  = {beta_m:.3f}")
print(f"beta_C (communication penalty)   = {beta_c:.3f}")
print(f"beta_L (load-imbalance penalty)  = {beta_l:.3f}")
print(f"dimension I (balance vs. comm)   = {dim1:.3f}")

# ---------------------------------------------------------------------------
# 3. Partition both snapshots and measure the actual behaviour.
# ---------------------------------------------------------------------------
partitioner = NaturePlusFable()
res_prev = partitioner.partition(h_prev, NPROCS)
res_cur = partitioner.partition(h_cur, NPROCS, previous=res_prev)
res_cur.validate(h_cur)

sim = TraceSimulator()
metrics = sim.measure_step(h_cur, res_cur, res_prev, h_prev)

print(f"\nunder {partitioner.describe()['name']} on {NPROCS} ranks:")
print(f"load imbalance (max/avg)         = {metrics.load_imbalance:.3f}")
print(f"relative communication           = {metrics.relative_comm:.3f}")
print(f"relative data migration          = {metrics.relative_migration:.3f}")
print(f"modeled step time                = {metrics.total_seconds * 1e3:.2f} ms")

print(
    f"\nmodel predicted beta_m={beta_m:.3f}; the simulator measured "
    f"{metrics.relative_migration:.3f} — the penalty anticipates the "
    f"migration pressure of the moved refinement region."
)
