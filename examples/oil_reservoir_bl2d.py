"""BL2D walkthrough: trace an oil-water flow kernel and validate the model.

Reproduces the paper's Figure 5 pipeline end to end at a laptop-friendly
scale: run the Buckley--Leverett kernel, record the grid hierarchy at
every regrid, partition the trace with Nature+Fable (static defaults,
section 5.1.2), and superimpose the measured relative migration and
communication with the penalties beta_m and beta_C.

Run:  python examples/oil_reservoir_bl2d.py
"""

from repro.apps import BuckleyLeverett2D, TraceGenConfig, generate_trace
from repro.experiments import dominant_period, pearson
from repro.model import StateSampler
from repro.partition import NaturePlusFable
from repro.simulator import TraceSimulator

NPROCS = 8

# 1. Generate the trace: 5-level factor-2 hierarchy, regrid every 4 steps.
config = TraceGenConfig(
    base_shape=(32, 32), max_levels=4, nsteps=60, regrid_interval=4
)
app = BuckleyLeverett2D(shape=(128, 128))
trace = generate_trace(app, config)
stats = trace.stats()
print(
    f"trace '{trace.name}': {stats.nsteps} snapshots, "
    f"{stats.min_cells}..{stats.max_cells} cells, "
    f"max {stats.max_levels} levels, ~{stats.mean_patches:.0f} patches"
)

# 2. Evaluate the model ab initio on the unpartitioned hierarchies.
sampler = StateSampler(nprocs=NPROCS)
model = sampler.penalty_series(trace)

# 3. Replay through the execution simulator with the static partitioner.
sim = TraceSimulator()
actual = sim.run(trace, NaturePlusFable(), NPROCS)
mig = actual.series("relative_migration")
comm = actual.series("relative_comm")

# 4. Figure-5-style table: both panels, superimposed without scaling.
print(f"\n{'step':>5} {'beta_m':>8} {'measured mig':>13} {'beta_C':>8} "
      f"{'measured comm':>14}")
for i, step in enumerate(model.steps):
    print(
        f"{step:>5d} {model.beta_m[i]:>8.3f} {mig[i]:>13.3f} "
        f"{model.beta_c[i]:>8.3f} {comm[i]:>14.3f}"
    )

# 5. The section 5.2 reading of the figure.
corr = pearson(model.beta_m[1:], mig[1:])
period_model = dominant_period(model.beta_m[1:])
period_actual = dominant_period(mig[1:])
print(f"\ncorr(beta_m, measured migration) = {corr:+.3f}")
print(f"oscillation period: model {period_model} vs measured {period_actual}")
print(
    "the injection cycles drive the water front to surge and stall; the "
    "penalty tracks the resulting inflate/deflate period of the hierarchy."
)
