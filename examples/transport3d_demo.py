"""TP3D walkthrough: a 3-D trace through the dimension-general stack.

Generates a small deterministic 3-D transport trace, replays it under the
domain-SFC partitioner, Nature+Fable and the ArMADA octant schedule, and
prints the per-step simulator metrics side by side — the 3-D counterpart
of the 2-D walkthroughs.

Run:  python examples/transport3d_demo.py
"""

from repro.experiments import paper_trace
from repro.meta.armada import ArmadaClassifier
from repro.partition import DomainSfcPartitioner, NaturePlusFable
from repro.simulator import TraceSimulator

NPROCS = 8


def main() -> None:
    trace = paper_trace("tp3d", scale="small")
    print(f"trace: {trace.name}, {len(trace)} snapshots")
    for snap in trace:
        h = snap.hierarchy
        sizes = ", ".join(f"l{lev.index}:{lev.ncells}" for lev in h)
        print(f"  step {snap.step:3d}  ndim={h.ndim}  [{sizes}]")

    sim = TraceSimulator()
    runs = {
        "domain-sfc (hilbert)": sim.run(
            trace, DomainSfcPartitioner(curve="hilbert"), NPROCS
        ),
        "nature+fable": sim.run(trace, NaturePlusFable(), NPROCS),
        "armada schedule": sim.run_scheduled(trace, ArmadaClassifier(), NPROCS),
    }

    print(f"\nreplay on {NPROCS} ranks:")
    header = f"{'partitioner':<22s} {'imbalance':>9s} {'rel comm':>9s} {'rel mig':>9s} {'seconds':>9s}"
    print(header)
    print("-" * len(header))
    for name, result in runs.items():
        s = result.summary()
        print(
            f"{name:<22s} {s['mean_imbalance']:9.3f} "
            f"{s['mean_relative_comm']:9.3f} "
            f"{s['mean_relative_migration']:9.3f} "
            f"{s['total_seconds']:9.4f}"
        )


if __name__ == "__main__":
    main()
