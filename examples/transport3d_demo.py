"""3-D suite walkthrough: tp3d and bl3d through the dimension-general stack.

Generates the small deterministic 3-D traces — the meandering-vortex
transport benchmark (tp3d, seemingly random) and the corner-to-corner
Buckley--Leverett displacement (bl3d, oscillatory) — and replays each
under the domain-SFC partitioner, Nature+Fable and the ArMADA octant
schedule.  The 2 apps x 3 schedules grid is submitted to the experiment
engine as one sharded sweep (each worker owns one workload's trace), so
re-running the demo fetches every row from the content-addressed store.

Run:  python examples/transport3d_demo.py
"""

from repro.engine import run_specs, sim_spec
from repro.experiments import APP_NAMES_3D, paper_trace

NPROCS = 8
PARTITIONERS = ("domain-sfc-hilbert", "nature+fable", "armada-octant")


def main() -> None:
    for name in APP_NAMES_3D:
        trace = paper_trace(name, scale="small")
        print(f"trace: {trace.name}, {len(trace)} snapshots")
        for snap in trace:
            h = snap.hierarchy
            sizes = ", ".join(f"l{lev.index}:{lev.ncells}" for lev in h)
            print(f"  step {snap.step:3d}  ndim={h.ndim}  [{sizes}]")

    specs = [
        sim_spec(name, "small", nprocs=NPROCS, partitioner=part)
        for name in APP_NAMES_3D
        for part in PARTITIONERS
    ]
    # Equivalent to n_jobs=2; swap in backend="cluster", workers=2 to
    # drain the same sweep through repro worker daemons instead.
    results = run_specs(specs, backend="process", n_jobs=2, progress=print)

    print(f"\nreplay on {NPROCS} ranks:")
    header = (
        f"{'app':<6s} {'partitioner':<20s} {'imbalance':>9s} "
        f"{'rel comm':>9s} {'rel mig':>9s} {'seconds':>9s}"
    )
    print(header)
    print("-" * len(header))
    for spec, result in zip(specs, results):
        s = result.meta["summary"]
        print(
            f"{spec.app:<6s} {spec.partitioner:<20s} "
            f"{s['mean_imbalance']:9.3f} "
            f"{s['mean_relative_comm']:9.3f} "
            f"{s['mean_relative_migration']:9.3f} "
            f"{s['total_seconds']:9.4f}"
        )


if __name__ == "__main__":
    main()
