"""Ablation A: the beta_m denominator choice (section 4.4).

The paper argues for ``|H_t|`` over ``|H_{t-1}|``; this bench measures the
correlation of each variant against the measured relative migration on all
four traces.
"""

from __future__ import annotations

from repro.experiments import APP_NAMES, ablation_denominator

from conftest import BENCH_NPROCS


def test_ablation_denominator(benchmark, scale):
    table = benchmark.pedantic(
        ablation_denominator,
        kwargs={"scale": scale, "nprocs": BENCH_NPROCS},
        rounds=1,
        iterations=1,
    )
    print()
    print(f"{'app':<6} {'current |H_t|':>14} {'previous |H_t-1|':>17} {'max':>8}")
    for name in APP_NAMES:
        row = table[name]
        print(
            f"{name:<6} {row['current']:>14.3f} {row['previous']:>17.3f} "
            f"{row['max']:>8.3f}"
        )
    for row in table.values():
        for v in row.values():
            assert -1.0 <= v <= 1.0
    if scale == "paper":
        # The paper's choice should not be dominated: |H_t| is at least as
        # good as the alternatives on the majority of kernels.
        wins = sum(
            table[n]["current"] >= max(table[n]["previous"], table[n]["max"]) - 0.05
            for n in APP_NAMES
        )
        assert wins >= 2
