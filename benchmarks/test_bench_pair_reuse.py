"""End-to-end replay cost of the temporal-coherence reuse layer.

Replays one full partitioner run (every regrid step, all metrics)
under ``REPRO_PAIR_REUSE=auto`` — persistent per-map pair indexes,
delta-updated between consecutive steps, plus the batched overlay
engine — and under ``=off``, the per-query PR-6 path.  Step metrics
must agree exactly; the wall-clock ratio and the build/reuse/delta
counters are the reproduction record, published to
``BENCH_pair_reuse.json`` for the CI baseline diff.
"""

from __future__ import annotations

import time

from repro.engine.components import create
from repro.experiments import paper_trace
from repro.geometry import (
    pair_index_counters,
    pair_index_forced,
    pair_reuse_forced,
    reset_pair_index_counters,
)
from repro.simulator import TraceSimulator

from conftest import BENCH_NPROCS, bench_scale, record_bench


def _replay(mode: str, app: str, scale: str):
    trace = paper_trace(app, scale)
    part = create("partitioner", "nature+fable")
    sim = TraceSimulator()
    reset_pair_index_counters()
    t0 = time.perf_counter()
    with pair_index_forced("grid"), pair_reuse_forced(mode):
        result = sim.run(trace, part, BENCH_NPROCS)
    seconds = time.perf_counter() - t0
    return result, seconds, pair_index_counters().as_dict()


def _compare_replay(app: str, scale: str) -> dict:
    on_result, on_s, on_counters = _replay("auto", app, scale)
    off_result, off_s, off_counters = _replay("off", app, scale)
    assert len(on_result.steps) == len(off_result.steps)
    for s_on, s_off in zip(on_result.steps, off_result.steps):
        assert s_on == s_off, "reuse layer changed a replay step metric"
    assert on_counters["index_reuses"] > 0, "reuse never engaged"
    assert on_counters["delta_updates"] > 0, "no step-to-step delta updates"
    assert off_counters["index_reuses"] == 0
    row = {
        "workload": f"{app}:{scale}",
        "steps": len(on_result.steps),
        "reuse_on_s": on_s,
        "reuse_off_s": off_s,
        "speedup": off_s / max(on_s, 1e-9),
        "index_builds": on_counters["index_builds"],
        "index_reuses": on_counters["index_reuses"],
        "delta_updates": on_counters["delta_updates"],
    }
    print(
        f"\n  {row['workload']:<12} {row['steps']:>3} steps | "
        f"reuse on {on_s:7.3f} s ({row['index_builds']} builds, "
        f"{row['delta_updates']} deltas, {row['index_reuses']} reuses) | "
        f"off {off_s:7.3f} s | speedup x{row['speedup']:.2f}"
    )
    record_bench(
        "pair_reuse", f"replay-on:{row['workload']}", on_s,
        counters=on_counters, steps=row["steps"],
    )
    record_bench(
        "pair_reuse", f"replay-off:{row['workload']}", off_s,
        counters=off_counters, steps=row["steps"],
        speedup=row["speedup"],
    )
    return row


def test_full_replay_reuse_2d(benchmark):
    """2-D paper scale: bit-identical steps, reuse engaged."""
    scale = bench_scale()
    _compare_replay("tp2d", scale)
    trace = paper_trace("tp2d", scale)
    part = create("partitioner", "nature+fable")
    sim = TraceSimulator()
    with pair_index_forced("grid"), pair_reuse_forced("auto"):
        result = benchmark.pedantic(
            sim.run, args=(trace, part, BENCH_NPROCS), rounds=1, iterations=1
        )
    assert len(result.steps) == len(trace)


def test_full_replay_reuse_3d_deep(benchmark):
    """3-D deep: the reuse replay must beat the per-query path >= 1.5x."""
    scale = "deep" if bench_scale() == "paper" else "small"
    row = _compare_replay("tp3d", scale)
    trace = paper_trace("tp3d", scale)
    part = create("partitioner", "nature+fable")
    sim = TraceSimulator()
    with pair_index_forced("grid"), pair_reuse_forced("auto"):
        result = benchmark.pedantic(
            sim.run, args=(trace, part, BENCH_NPROCS), rounds=1, iterations=1
        )
    assert len(result.steps) == len(trace)
    if scale == "deep":
        assert row["reuse_off_s"] >= 1.5 * row["reuse_on_s"], (
            f"expected >= 1.5x end-to-end replay speedup at deep scale, "
            f"got x{row['speedup']:.2f}"
        )
