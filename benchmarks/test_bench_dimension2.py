"""Dimension II demonstration (section 4.3): requested vs. offered time.

The paper lays the theory for trade-off 2 but leaves the final comparison
to experiment; this bench regenerates the requested/offered trajectory for
BL2D (the paper's running example of dynamic behaviour) and prints the
dimension-II coordinate the sampler derives from it.
"""

from __future__ import annotations

from repro.experiments import dimension2_series

from conftest import BENCH_NPROCS, print_series


def test_dimension2_bl2d(benchmark, scale):
    d = benchmark.pedantic(
        dimension2_series,
        args=("bl2d",),
        kwargs={"scale": scale, "nprocs": BENCH_NPROCS},
        rounds=1,
        iterations=1,
    )
    print()
    print("Dimension II (speed vs. quality) — BL2D")
    print_series("step", d["step"])
    print_series("requested fraction", d["requested_fraction"])
    print_series("normalized grid size", d["normalized_grid_size"])
    print_series("requested seconds", d["requested_seconds"])
    print_series("offered seconds", d["offered_seconds"])
    print_series("dim2 coordinate", d["dim2"])
    assert ((d["dim2"] >= 0) & (d["dim2"] <= 1)).all()
    # The grid-size normalization of section 4.2 must be active: the
    # requested seconds vary even when penalties are steady.
    assert d["requested_seconds"].std() > 0
