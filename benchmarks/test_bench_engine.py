"""Engine benchmarks: sharded-sweep speedup and warm-store reuse.

Measures the two wins the execution subsystem exists for:

* *parallel speedup* — the static-suite sweep sharded over worker
  processes vs. the serial in-process path (reported; only loosely
  asserted, since process start-up dominates at ``small`` scale);
* *warm-cache speedup* — re-running a sweep against a warm store must
  skip the simulator entirely, which is what makes regenerating every
  figure from stored results practically free.

Scale via ``REPRO_BENCH_SCALE`` as for the other benches; worker count
via ``REPRO_BENCH_JOBS`` (default 2).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.engine import ResultStore, plan_specs, run_specs, sim_spec
from repro.experiments import APP_NAMES

from conftest import BENCH_NPROCS, record_bench

N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))

PARTITIONERS = ("nature+fable", "domain-sfc-hilbert", "patch-lpt")


def _sweep(scale):
    return [
        sim_spec(app, scale, nprocs=BENCH_NPROCS, partitioner=part)
        for app in APP_NAMES
        for part in PARTITIONERS
    ]


def test_sharded_sweep_speedup_and_warm_reuse(tmp_path, scale):
    specs = _sweep(scale)

    t0 = time.perf_counter()
    serial = run_specs(specs, n_jobs=1, store=ResultStore(tmp_path / "serial"))
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_specs(
        specs, n_jobs=N_JOBS, store=ResultStore(tmp_path / "parallel")
    )
    t_parallel = time.perf_counter() - t0

    warm_store = ResultStore(tmp_path / "serial")
    t0 = time.perf_counter()
    warm = run_specs(specs, n_jobs=1, store=warm_store)
    t_warm = time.perf_counter() - t0

    print()
    print(
        f"sweep of {len(specs)} replays ({len(APP_NAMES)} apps x "
        f"{len(PARTITIONERS)} partitioners, scale={scale}, P={BENCH_NPROCS})"
    )
    print(f"  serial (n_jobs=1)      {t_serial:8.3f} s")
    print(
        f"  sharded (n_jobs={N_JOBS})     {t_parallel:8.3f} s   "
        f"speedup x{t_serial / t_parallel:.2f}"
    )
    print(
        f"  warm store re-run      {t_warm:8.3f} s   "
        f"speedup x{t_serial / t_warm:.2f}"
    )
    record_bench("engine", f"serial:{scale}", t_serial, jobs=len(specs))
    record_bench("engine", f"sharded-{N_JOBS}:{scale}", t_parallel,
                 jobs=len(specs), speedup=t_serial / t_parallel)
    record_bench("engine", f"warm:{scale}", t_warm,
                 jobs=len(specs), speedup=t_serial / t_warm)

    # Parallel and serial must agree bit-for-bit; warm must not recompute.
    for ser, par, wrm in zip(serial, parallel, warm):
        assert ser.key == par.key == wrm.key
        for name in ser.arrays:
            assert np.array_equal(ser.arrays[name], par.arrays[name])
            assert np.array_equal(ser.arrays[name], wrm.arrays[name])
    assert t_warm < t_serial  # store hits must beat simulation
    _, missing = plan_specs(specs, warm_store)
    assert missing == []
