"""Ablation B: dynamic PAC (meta-partitioner) vs. every static choice.

The ArMADA proof-of-concept ("even with such a simple model, execution
times were reduced", section 3) and the conclusions ("tracking and
adapting to this dynamic behavior lead to potentially large decreases in
execution times") quantified: across applications x machine scenarios,
the meta-partitioner's worst-case regret against the per-pair best static
partitioner should be far smaller than any fixed static choice's.
"""

from __future__ import annotations

import os

from repro.experiments import (
    APP_NAMES,
    machine_scenarios,
    meta_vs_static,
    regret_summary,
)

from conftest import BENCH_NPROCS

#: Worker processes for the engine-sharded grid (84 replays at full scale).
N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))


def test_meta_vs_static(benchmark, scale):
    table = benchmark.pedantic(
        meta_vs_static,
        kwargs={"scale": scale, "nprocs": BENCH_NPROCS, "n_jobs": N_JOBS},
        rounds=1,
        iterations=1,
    )
    print()
    for name in APP_NAMES:
        for mlabel in machine_scenarios():
            row = table[name][mlabel]
            cells = " ".join(
                f"{k}={v:8.2f}" for k, v in row.items() if k != "meta_regret"
            )
            print(f"{name:<6} {mlabel:<13} {cells} regret={row['meta_regret']:+.2f}")
    worst = regret_summary(table)
    print()
    print("worst-case regret across (app, machine) pairs:")
    for label, regret in sorted(worst.items(), key=lambda kv: kv[1]):
        print(f"  {label:<22} {regret:+.3f}")
    # The dynamic schedules must beat the *worst* statics decisively.
    statics = [
        v
        for k, v in worst.items()
        if k not in ("meta-partitioner", "armada-octant")
    ]
    assert worst["meta-partitioner"] < max(statics)
