"""Micro-benchmarks of the library's computational kernels.

These time the hot paths the repository's vectorization work targets:
box-intersection volume (the ``beta_m`` kernel), Hilbert/Morton key
generation, the hybrid partitioner, the execution simulator's per-step
metrics and full-model state sampling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import paper_trace
from repro.geometry import intersection_volume
from repro.model import StateSampler, migration_penalty
from repro.partition import DomainSfcPartitioner, NaturePlusFable
from repro.sfc import hilbert_key, morton_key
from repro.simulator import TraceSimulator

from conftest import BENCH_NPROCS


@pytest.fixture(scope="module")
def trace(scale):
    return paper_trace("sc2d", scale)


@pytest.fixture(scope="module")
def hierarchy_pair(trace):
    return trace[-2].hierarchy, trace[-1].hierarchy


def test_intersection_volume_kernel(benchmark, hierarchy_pair):
    prev, cur = hierarchy_pair
    a = prev.levels[-1].patches.boxes
    b = cur.levels[min(len(cur.levels), len(prev.levels)) - 1].patches.boxes
    result = benchmark(intersection_volume, a, b)
    assert result >= 0


def test_migration_penalty_full(benchmark, hierarchy_pair):
    prev, cur = hierarchy_pair
    value = benchmark(migration_penalty, prev, cur)
    assert 0.0 <= value <= 1.0


def test_hilbert_keys(benchmark):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 1 << 12, size=100_000)
    y = rng.integers(0, 1 << 12, size=100_000)
    keys = benchmark(hilbert_key, x, y, 12)
    assert keys.shape == x.shape


def test_morton_keys(benchmark):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 1 << 12, size=100_000)
    y = rng.integers(0, 1 << 12, size=100_000)
    keys = benchmark(morton_key, x, y, 12)
    assert keys.shape == x.shape


def test_nature_fable_partition(benchmark, hierarchy_pair):
    _, cur = hierarchy_pair
    part = NaturePlusFable()
    result = benchmark(part.partition, cur, BENCH_NPROCS)
    result.validate(cur)


def test_domain_sfc_partition(benchmark, hierarchy_pair):
    _, cur = hierarchy_pair
    part = DomainSfcPartitioner()
    result = benchmark(part.partition, cur, BENCH_NPROCS)
    result.validate(cur)


def test_simulator_step_metrics(benchmark, hierarchy_pair):
    prev, cur = hierarchy_pair
    part = NaturePlusFable()
    prev_res = part.partition(prev, BENCH_NPROCS)
    cur_res = part.partition(cur, BENCH_NPROCS, previous=prev_res)
    sim = TraceSimulator()
    metrics = benchmark(
        sim.measure_step, cur, cur_res, prev_res, prev
    )
    assert metrics.total_seconds > 0


def test_state_sampling_per_trace(benchmark, trace):
    sampler = StateSampler(nprocs=BENCH_NPROCS)
    series = benchmark(sampler.penalty_series, trace)
    assert series.beta_m.shape[0] == len(trace)
