"""Shared benchmark configuration.

The benchmark suite regenerates every figure of the paper's evaluation
(DESIGN.md experiment index) and times the library's computational
kernels.  Figure benchmarks print the series they produce, so the
pytest output doubles as the reproduction record.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (default — minutes-level CI budget) or ``paper`` (the full
setup of section 5.1.1).

Figure and ablation benchmarks submit their replays through
:mod:`repro.engine`, so results land in the content-addressed store
(``REPRO_CACHE_DIR``, default ``~/.cache/repro``) and are shared between
benchmark files — the Nature+Fable replay timed for Figure 5 is reused
by the meta-vs-static grid.  A *re*-run of the suite therefore times the
warm-store path; ``python -m repro cache clear`` restores cold timings.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments import APP_NAMES, paper_trace


def bench_scale() -> str:
    """The benchmark scale selected via REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {scale}")
    return scale


BENCH_NPROCS = 16


@pytest.fixture(scope="session")
def scale() -> str:
    """Benchmark scale fixture."""
    return bench_scale()


@pytest.fixture(scope="session", autouse=True)
def warm_traces(scale):
    """Generate (and cache) all four traces once per session so individual
    benchmarks time the experiment, not the trace generation.  The traces
    also land in the engine's on-disk store, so later sessions skip
    generation entirely."""
    for name in APP_NAMES:
        paper_trace(name, scale)


def print_series(label: str, values) -> None:
    """Render one figure series as the row the paper's plot shows."""
    arr = np.asarray(values, dtype=np.float64)
    body = " ".join(f"{v:6.3f}" for v in arr)
    print(f"  {label:<28s} {body}")
