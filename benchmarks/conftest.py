"""Shared benchmark configuration.

The benchmark suite regenerates every figure of the paper's evaluation
(DESIGN.md experiment index) and times the library's computational
kernels.  Figure benchmarks print the series they produce, so the
pytest output doubles as the reproduction record.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (default — minutes-level CI budget) or ``paper`` (the full
setup of section 5.1.1).

Figure and ablation benchmarks submit their replays through
:mod:`repro.engine`, so results land in the content-addressed store
(``REPRO_CACHE_DIR``, default ``~/.cache/repro``) and are shared between
benchmark files — the Nature+Fable replay timed for Figure 5 is reused
by the meta-vs-static grid.  A *re*-run of the suite therefore times the
warm-store path; ``python -m repro cache clear`` restores cold timings.

Each suite can also publish machine-readable results: call
:func:`record_bench` with a case label, wall seconds, peak MB and a
counter dict, and the session writes one ``BENCH_<suite>.json`` per
suite into ``benchmarks/out/`` (override with ``REPRO_BENCH_OUT``) so
CI can diff timings across commits without scraping stdout.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import APP_NAMES, paper_trace

#: Version stamp of the BENCH_<suite>.json document schema.
BENCH_SCHEMA = 1

_BENCH_RECORDS: dict[str, list[dict]] = {}


def bench_out_dir() -> Path:
    """Where BENCH_<suite>.json documents land."""
    default = Path(__file__).resolve().parent / "out"
    return Path(os.environ.get("REPRO_BENCH_OUT", default))


def record_bench(suite: str, case: str, wall_s: float,
                 peak_mb: float | None = None,
                 counters: dict | None = None, **extra) -> dict:
    """Accumulate one machine-readable benchmark record.

    ``suite`` names the output file (``BENCH_<suite>.json``); ``case``
    identifies the measurement within it.  Extra keyword fields ride
    along verbatim (speedups, sizes, ...).
    """
    record = {
        "case": case,
        "wall_s": float(wall_s),
        "peak_mb": None if peak_mb is None else float(peak_mb),
        "counters": {k: int(v) for k, v in (counters or {}).items()},
    }
    record.update(extra)
    _BENCH_RECORDS.setdefault(suite, []).append(record)
    return record


def pytest_sessionfinish(session, exitstatus):
    """Write one BENCH_<suite>.json per suite that recorded anything."""
    if not _BENCH_RECORDS:
        return
    out = bench_out_dir()
    out.mkdir(parents=True, exist_ok=True)
    for suite, records in sorted(_BENCH_RECORDS.items()):
        doc = {
            "schema": BENCH_SCHEMA,
            "suite": suite,
            "scale": bench_scale(),
            "records": records,
        }
        path = out / f"BENCH_{suite}.json"
        path.write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {path} ({len(records)} records)")


def bench_scale() -> str:
    """The benchmark scale selected via REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {scale}")
    return scale


BENCH_NPROCS = 16


@pytest.fixture(scope="session")
def scale() -> str:
    """Benchmark scale fixture."""
    return bench_scale()


@pytest.fixture(scope="session", autouse=True)
def warm_traces(scale):
    """Generate (and cache) all four traces once per session so individual
    benchmarks time the experiment, not the trace generation.  The traces
    also land in the engine's on-disk store, so later sessions skip
    generation entirely."""
    for name in APP_NAMES:
        paper_trace(name, scale)


def print_series(label: str, values) -> None:
    """Render one figure series as the row the paper's plot shows."""
    arr = np.asarray(values, dtype=np.float64)
    body = " ".join(f"{v:6.3f}" for v in arr)
    print(f"  {label:<28s} {body}")
