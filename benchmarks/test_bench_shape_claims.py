"""Quantified section 5.2 claims across the whole application suite.

The paper's reading of Figures 4-7: "a larger beta_m generally corresponds
to a greater amount of data migration", "the model captures the time
period of the oscillation" (BL2D, SC2D), "beta_C ... reflects a worst-case
scenario" and "beta_m ... is somewhat cautious; the amplitude was
generally slightly lower".
"""

from __future__ import annotations

from repro.experiments import APP_NAMES, shape_report

from conftest import BENCH_NPROCS


def test_shape_claims(benchmark, scale):
    report = benchmark.pedantic(
        shape_report,
        kwargs={"scale": scale, "nprocs": BENCH_NPROCS},
        rounds=1,
        iterations=1,
    )
    print()
    print(f"{'app':<6} {'corr(beta_m,mig)':>17} {'corr(beta_C,comm)':>18} "
          f"{'envelope':>9} {'amp-ratio':>10} {'lead':>5} {'periods (mig m/a)':>18}")
    for name in APP_NAMES:
        row = report[name]
        p = row["periods"]
        print(
            f"{name:<6} {row['migration_correlation']:>17.3f} "
            f"{row['comm_correlation']:>18.3f} "
            f"{row['comm_envelope_fraction']:>9.2f} "
            f"{row['migration_amplitude_ratio']:>10.2f} "
            f"{row['migration_lead']:>+5d} "
            f"{str(p['migration_model']) + '/' + str(p['migration_actual']):>18}"
        )
    if scale == "paper":
        # Claim (a): beta_m co-moves with measured migration on most apps.
        positive = [
            report[n]["migration_correlation"] > 0.2 for n in APP_NAMES
        ]
        assert sum(positive) >= 3
        # Claim (b): oscillation periods match for the oscillatory kernels.
        for name in ("bl2d", "sc2d"):
            p = report[name]["periods"]
            if p["migration_model"] and p["migration_actual"]:
                assert abs(p["migration_model"] - p["migration_actual"]) <= 2
        # Claim (c): beta_m leads or aligns, never lags badly (the paper's
        # "peaks one time-step before ... occasionally").
        for name in APP_NAMES:
            assert report[name]["migration_lead"] >= -1
        # Claim (d): beta_m is cautious — amplitude at or below measured.
        cautious = [
            report[n]["migration_amplitude_ratio"] <= 1.1 for n in APP_NAMES
        ]
        assert sum(cautious) >= 3
