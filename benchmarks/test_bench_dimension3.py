"""Micro-benchmarks of the 3-D hot paths opened by the dimension refactor.

Times the N-D SFC key kernels, the 3-D column-workload reduction, the
partitioners and the simulator's per-step raster metrics on the tp3d
trace — the same hot paths :mod:`test_bench_kernels` times in 2-D.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import paper_trace
from repro.partition import DomainSfcPartitioner, NaturePlusFable, column_workloads
from repro.sfc import hilbert_key_nd, morton_key_nd
from repro.simulator import TraceSimulator

from conftest import BENCH_NPROCS


@pytest.fixture(scope="module")
def trace(scale):
    return paper_trace("tp3d", scale)


@pytest.fixture(scope="module")
def hierarchy_pair(trace):
    return trace[-2].hierarchy, trace[-1].hierarchy


def test_hilbert_keys_3d(benchmark):
    rng = np.random.default_rng(0)
    coords = [rng.integers(0, 1 << 12, size=100_000) for _ in range(3)]
    keys = benchmark(hilbert_key_nd, coords, 12)
    assert keys.shape == coords[0].shape


def test_morton_keys_3d(benchmark):
    rng = np.random.default_rng(0)
    coords = [rng.integers(0, 1 << 12, size=100_000) for _ in range(3)]
    keys = benchmark(morton_key_nd, coords, 12)
    assert keys.shape == coords[0].shape


def test_column_workloads_3d(benchmark, hierarchy_pair):
    _, cur = hierarchy_pair
    weights = benchmark(column_workloads, cur, 2)
    assert weights.sum() == pytest.approx(cur.workload)


def test_domain_sfc_partition_3d(benchmark, hierarchy_pair):
    _, cur = hierarchy_pair
    part = DomainSfcPartitioner()
    result = benchmark(part.partition, cur, BENCH_NPROCS)
    result.validate(cur)


def test_nature_fable_partition_3d(benchmark, hierarchy_pair):
    _, cur = hierarchy_pair
    part = NaturePlusFable()
    result = benchmark(part.partition, cur, BENCH_NPROCS)
    result.validate(cur)


def test_simulator_step_metrics_3d(benchmark, hierarchy_pair):
    prev, cur = hierarchy_pair
    part = NaturePlusFable()
    prev_res = part.partition(prev, BENCH_NPROCS)
    cur_res = part.partition(cur, BENCH_NPROCS, previous=prev_res)
    sim = TraceSimulator()
    metrics = benchmark(sim.measure_step, cur, cur_res, prev_res, prev)
    assert metrics.total_seconds > 0


def test_full_replay_3d(benchmark, trace):
    sim = TraceSimulator()
    result = benchmark.pedantic(
        sim.run,
        args=(trace, DomainSfcPartitioner(), BENCH_NPROCS),
        rounds=1,
        iterations=1,
    )
    assert len(result.steps) == len(trace)
