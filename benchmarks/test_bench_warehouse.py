"""Warehouse benchmarks: ingest throughput and scan vs. store-load.

Measures what the columnar subsystem exists for:

* *ingest throughput* — flattening a sweep's stored runs into hive
  partitions (runs/s, rows/s), plus the idempotent re-build (which must
  do no shard I/O at all);
* *filtered scan vs. store loads* — answering "one metric for one
  partitioner" from the warehouse against loading every ``RunResult``
  blob and slicing in memory.  Peak memory comes from ``tracemalloc``,
  since bounded memory (not just wall time) is the point of the
  out-of-core path.

Results land in ``BENCH_warehouse.json`` via :func:`record_bench`.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.engine import ResultStore, run_specs, sim_spec
from repro.experiments import APP_NAMES
from repro.warehouse import Warehouse, group_stats

from conftest import BENCH_NPROCS, record_bench

PARTITIONERS = ("nature+fable", "domain-sfc-hilbert", "patch-lpt")


def _traced(fn):
    """(wall seconds, peak MB, result) of one call."""
    tracemalloc.start()
    t0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return wall, peak / 1e6, result


def test_ingest_and_filtered_scan(tmp_path, scale):
    store = ResultStore(tmp_path / "store")
    specs = [
        sim_spec(app, scale, nprocs=BENCH_NPROCS, partitioner=part)
        for app in APP_NAMES
        for part in PARTITIONERS
    ]
    results = run_specs(specs, store=store)
    total_rows = sum(r.arrays["step"].size for r in results)

    wh = Warehouse(tmp_path / "wh")
    t_build, mb_build, report = _traced(lambda: wh.build(store))
    assert report.runs == len(specs)
    t_rebuild, _, rebuild = _traced(lambda: wh.build(store))
    assert rebuild.runs == 0 and rebuild.shards == 0

    filters = {"partitioner": PARTITIONERS[0]}
    t_scan, mb_scan, from_wh = _traced(lambda: group_stats(
        wh, "steps", by=["app"], values=["load_imbalance"], filters=filters
    ))

    def store_path():
        out = {}
        for res in (store.get_result(s) for s in specs):
            if res.spec.partitioner != PARTITIONERS[0]:
                continue
            out.setdefault(res.spec.app, []).append(
                res.arrays["load_imbalance"]
            )
        return {
            app: np.concatenate(chunks).mean()
            for app, chunks in out.items()
        }

    t_store, mb_store, from_store = _traced(store_path)
    for (app,), per_value in from_wh.items():
        assert per_value["load_imbalance"]["mean"] == from_store[app]

    print()
    print(
        f"warehouse over {len(specs)} runs / {total_rows} steps rows "
        f"(scale={scale}, P={BENCH_NPROCS})"
    )
    print(f"  build (cold)        {t_build:8.3f} s  peak {mb_build:7.1f} MB"
          f"   {report.runs / max(t_build, 1e-9):8.1f} runs/s")
    print(f"  build (idempotent)  {t_rebuild:8.3f} s")
    print(f"  group_stats scan    {t_scan:8.3f} s  peak {mb_scan:7.1f} MB")
    print(f"  store-blob path     {t_store:8.3f} s  peak {mb_store:7.1f} MB")

    record_bench(
        "warehouse", f"build:{scale}", t_build, peak_mb=mb_build,
        counters={"runs": report.runs, "rows": report.rows,
                  "shards": report.shards},
        runs_per_s=report.runs / max(t_build, 1e-9),
    )
    record_bench(
        "warehouse", f"rebuild:{scale}", t_rebuild,
        counters={"runs": rebuild.runs},
    )
    record_bench(
        "warehouse", f"scan-group:{scale}", t_scan, peak_mb=mb_scan,
        counters={"groups": len(from_wh)},
    )
    record_bench(
        "warehouse", f"store-blob:{scale}", t_store, peak_mb=mb_store,
        counters={"runs": len(specs)},
    )
