"""Backend benchmarks: dispatch overhead of serial/process/cluster.

All three backends publish identical artifacts, so the interesting
number is the *orchestration overhead* each one adds around the same
simulator work: the serial loop is the floor, the process pool pays
worker spawn once per plan, and the cluster broker pays ticket/lease
filesystem round-trips plus worker daemon start-up.  A warm-store
re-run through each backend is also timed — resume cost is pure
plan-resolution and must be backend-independent.

Scale via ``REPRO_BENCH_SCALE`` as for the other benches.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import ClusterBackend, ResultStore, run_specs, sim_spec

from conftest import BENCH_NPROCS, record_bench

PARTITIONERS = ("nature+fable", "patch-lpt")
APPS = ("tp2d", "bl2d")


def _sweep(scale):
    return [
        sim_spec(app, scale, nprocs=BENCH_NPROCS, partitioner=part)
        for app in APPS
        for part in PARTITIONERS
    ]


def test_backend_overhead(tmp_path, scale):
    specs = _sweep(scale)
    backends = {
        "serial": lambda: "serial",
        "process": lambda: "process",
        "cluster": lambda: ClusterBackend(
            workers=2, lease_timeout=15.0, poll_interval=0.05,
            stall_timeout=600.0,
        ),
    }
    cold: dict[str, float] = {}
    warm: dict[str, float] = {}
    results: dict[str, list] = {}
    for name, make in backends.items():
        store = ResultStore(tmp_path / name)
        t0 = time.perf_counter()
        results[name] = run_specs(
            specs, store=store, backend=make(), n_jobs=2
        )
        cold[name] = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_specs(specs, store=store, backend=make(), n_jobs=2)
        warm[name] = time.perf_counter() - t0

    print()
    print(
        f"backend overhead on {len(specs)} replays "
        f"(scale={scale}, P={BENCH_NPROCS})"
    )
    for name in backends:
        print(
            f"  {name:<8} cold {cold[name]:8.3f} s   "
            f"warm resume {warm[name]:8.3f} s"
        )
        record_bench("backends", f"cold:{name}:{scale}", cold[name],
                     jobs=len(specs))
        record_bench("backends", f"warm:{name}:{scale}", warm[name],
                     jobs=len(specs))

    # Identical results across backends, and warm resumes never compute.
    for name in ("process", "cluster"):
        for ser, other in zip(results["serial"], results[name]):
            assert ser.key == other.key
            for column in ser.arrays:
                assert np.array_equal(
                    ser.arrays[column], other.arrays[column]
                )
    assert warm["serial"] < cold["serial"]
