"""Figure 1: dynamic behaviour of BL2D under a static partitioner.

The paper plots load imbalance and communication amount against time for
BL2D with a fixed P, motivating dynamic partitioner selection ("with a
dynamic selection of P ... the total execution time could have been
reduced").
"""

from __future__ import annotations

from repro.experiments import figure1

from conftest import BENCH_NPROCS, print_series


def test_figure1_bl2d_dynamic_behaviour(benchmark, scale):
    fig = benchmark.pedantic(
        figure1, kwargs={"scale": scale, "nprocs": BENCH_NPROCS},
        rounds=1, iterations=1,
    )
    print()
    print(f"Figure 1 — BL2D under static Nature+Fable, P={fig['nprocs']}")
    print_series("step", fig["step"])
    print_series("load imbalance [%]", fig["load_imbalance_percent"])
    print_series("relative communication", fig["relative_comm"])
    # The figure's message: the series vary substantially over time.
    imb = fig["load_imbalance_percent"]
    assert imb.max() > imb.min()
    assert fig["relative_comm"].std() > 0
