"""Figures 4-7: penalties vs. measured behaviour for the four kernels.

Each figure has two panels: actual relative communication superimposed
with ``beta_C`` (left) and actual relative data migration superimposed
with ``beta_m`` (right), both without scaling (section 5.1.4).  The
benchmark regenerates the four series and checks the qualitative claims
of section 5.2 (trends co-move; ``beta_m`` is cautious in amplitude).
"""

from __future__ import annotations

import pytest

from repro.experiments import FIGURE_APPS, figure_app

from conftest import BENCH_NPROCS, print_series


@pytest.mark.parametrize(
    "figure,app", sorted(FIGURE_APPS.items()), ids=lambda v: str(v)
)
def test_figure_model_vs_measured(benchmark, scale, figure, app):
    fig = benchmark.pedantic(
        figure_app,
        args=(app,),
        kwargs={"scale": scale, "nprocs": BENCH_NPROCS},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"Figure {figure} — {app.upper()}: model penalties vs. measured "
        f"(P={fig['nprocs']})"
    )
    print_series("step", fig["step"])
    print_series("actual relative comm", fig["actual_relative_comm"])
    print_series("beta_C (model)", fig["beta_c"])
    print_series("actual relative migration", fig["actual_relative_migration"])
    print_series("beta_m (model)", fig["beta_m"])
    print(
        f"  stats: corr(beta_m, migration)={fig['migration_correlation']:+.3f} "
        f"corr(beta_C, comm)={fig['comm_correlation']:+.3f} "
        f"envelope={fig['comm_envelope_fraction']:.2f} "
        f"amplitude-ratio={fig['migration_amplitude_ratio']:.2f} "
        f"lead={fig['migration_lead']:+d}"
    )
    print(
        f"  periods: migration model/actual = "
        f"{fig['migration_period_model']}/{fig['migration_period_actual']}, "
        f"comm model/actual = "
        f"{fig['comm_period_model']}/{fig['comm_period_actual']}"
    )
    # Section 5.2, weakest-form checks that must hold at any scale:
    assert fig["beta_m"][0] == 0.0
    assert (fig["beta_m"] >= 0).all() and (fig["beta_m"] <= 1).all()
    assert (fig["beta_c"] >= 0).all() and (fig["beta_c"] <= 1).all()
