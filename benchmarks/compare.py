"""Diff ``BENCH_<suite>.json`` documents against checked-in baselines.

Usage::

    python benchmarks/compare.py [--out benchmarks/out] \\
        [--baselines benchmarks/baselines] [--tolerance 0.25] [--strict]

For every suite present in both directories, prints one line per
benchmark case with the wall-clock and peak-memory delta versus the
baseline record.  This is a **soft gate**: regressions beyond the
tolerance are flagged with ``!!`` and counted, but the exit status stays
0 unless ``--strict`` is given — wall-clock on shared CI runners is too
noisy for a hard fail, and the artifact upload preserves the numbers
for human review.

Baselines are refreshed by copying ``benchmarks/out/BENCH_*.json`` into
``benchmarks/baselines/`` after a benchmark run at the same scale
(``REPRO_BENCH_SCALE=small`` for the checked-in set) and committing the
result.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_suites(directory: Path) -> dict[str, dict]:
    """``{suite name: document}`` for every BENCH_*.json in a directory."""
    suites: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"  skipping {path.name}: {exc}", file=sys.stderr)
            continue
        suites[doc.get("suite", path.stem[len("BENCH_"):])] = doc
    return suites


def index_records(doc: dict) -> dict[str, dict]:
    return {r["case"]: r for r in doc.get("records", [])}


def fmt_delta(new: float | None, old: float | None) -> tuple[str, float | None]:
    """Human delta string plus the relative change (None if undefined)."""
    if new is None or old is None or old <= 0:
        return "n/a", None
    rel = (new - old) / old
    return f"{rel:+7.1%}", rel


def main(argv: list[str] | None = None) -> int:
    here = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=here / "out",
                        help="directory holding fresh BENCH_*.json files")
    parser.add_argument("--baselines", type=Path, default=here / "baselines",
                        help="directory holding checked-in baselines")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative wall-clock slowdown that counts as "
                             "a regression (default 0.25 = 25%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when regressions are found")
    args = parser.parse_args(argv)

    fresh = load_suites(args.out)
    base = load_suites(args.baselines)
    if not fresh:
        print(f"no BENCH_*.json documents under {args.out}")
        return 0
    if not base:
        print(f"no baselines under {args.baselines}; nothing to compare")
        return 0

    regressions = 0
    compared = 0
    for suite in sorted(fresh):
        if suite not in base:
            print(f"suite {suite}: no baseline (new suite?)")
            continue
        fresh_scale = fresh[suite].get("scale")
        base_scale = base[suite].get("scale")
        if fresh_scale != base_scale:
            print(
                f"suite {suite}: scale mismatch "
                f"({fresh_scale} vs baseline {base_scale}) — skipped"
            )
            continue
        print(f"suite {suite} (scale {fresh_scale}):")
        baseline_records = index_records(base[suite])
        for record in fresh[suite].get("records", []):
            case = record["case"]
            old = baseline_records.get(case)
            if old is None:
                print(f"  {case:<44} new case, no baseline")
                continue
            compared += 1
            wall_str, wall_rel = fmt_delta(
                record.get("wall_s"), old.get("wall_s")
            )
            peak_str, _ = fmt_delta(record.get("peak_mb"), old.get("peak_mb"))
            flag = ""
            if wall_rel is not None and wall_rel > args.tolerance:
                flag = "  !! wall regression"
                regressions += 1
            print(
                f"  {case:<44} wall {record.get('wall_s', 0.0):9.4f}s "
                f"({wall_str})  peak ({peak_str}){flag}"
            )
    print(
        f"\ncompared {compared} cases; {regressions} wall-clock "
        f"regression(s) beyond {args.tolerance:.0%}"
    )
    if regressions and args.strict:
        return 1
    if regressions:
        print("soft gate: not failing the build (pass --strict to enforce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
