"""Quadratic vs grid-bucket-indexed cost of the pair-kernel metric set.

Times — and measures the peak allocation of — one full per-step metric
evaluation (ghost exchange, message pairs, inter-level transfer,
migration) under both candidate-generation paths:

* **indexed**: grid-bucket pair pruning (``REPRO_PAIR_INDEX=grid``, the
  production path) — candidates near-linear in the box count;
* **bruteforce**: the historical O(boxes^2) broadcast sweeps, kept as
  the cross-check path.

Three workloads are exercised: the paper's 2-D scale, the 3-D ``deep``
scale (512^3 finest index space) and the 3-D ``ultra`` scale (64^3
base, 5 levels — a 1024^3 finest index space) that the index unlocks;
at ``REPRO_BENCH_SCALE=small`` all three shrink to the CI-sized
variant.  At ``ultra`` the brute-force path is *not run* — its
candidate product (printed from the kernel counters) is the
infeasibility record.  The printed table, including candidate vs exact
vs brute-force pair counts, is this change's reproduction record.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.experiments import paper_trace
from repro.geometry import (
    pair_index_counters,
    pair_index_forced,
    pair_reuse_forced,
    reset_pair_index_counters,
)
from repro.simulator import (
    ghost_exchange_cells,
    ghost_message_pairs,
    interlevel_transfer_cells,
    migration_cells,
)

from conftest import BENCH_NPROCS, bench_scale, record_bench
from test_bench_owner_sparse import _distributions


def _metric_set(hierarchy, prev, cur) -> tuple:
    ghost = sum(
        ghost_exchange_cells(cur.maps[level.index]) for level in hierarchy
    )
    pairs = sum(
        ghost_message_pairs(cur.maps[level.index]) for level in hierarchy
    )
    inter = sum(
        interlevel_transfer_cells(
            cur.maps[level.index - 1], cur.maps[level.index], level.ratio
        )
        for level in hierarchy.levels[1:]
    )
    return ghost, pairs, inter, migration_cells(prev, cur)


def _measure(mode: str, hierarchy, prev, cur):
    """(result, seconds, peak bytes, counter snapshot) under one mode."""
    reset_pair_index_counters()
    tracemalloc.start()
    t0 = time.perf_counter()
    with pair_index_forced(mode):
        result = _metric_set(hierarchy, prev, cur)
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak, pair_index_counters().as_dict()


def _compare(app: str, scale: str, run_brute: bool = True) -> dict:
    hierarchy, prev, cur = _distributions(app, scale)
    indexed_out, indexed_s, indexed_peak, counters = _measure(
        "grid", hierarchy, prev, cur
    )
    row = {
        "workload": f"{app}:{scale}",
        "cells": hierarchy.ncells,
        "boxes": sum(m.nboxes for m in cur.maps),
        "indexed_s": indexed_s,
        "indexed_peak_mb": indexed_peak / 1e6,
        "pair_product": counters["pair_product"],
        "candidate_pairs": counters["candidate_pairs"],
        "exact_pairs": counters["exact_pairs"],
    }
    print(
        f"\n  {row['workload']:<12} cells={row['cells']:>13,} "
        f"boxes={row['boxes']:>6} | candidates {row['candidate_pairs']:>11,} "
        f"of {row['pair_product']:>14,} brute-force pairs "
        f"({row['exact_pairs']:,} exact) | "
        f"indexed {indexed_s * 1e3:8.1f} ms / {row['indexed_peak_mb']:7.1f} MB"
    )
    record_bench(
        "pair_kernels", f"indexed:{row['workload']}", indexed_s,
        peak_mb=row["indexed_peak_mb"], counters=counters,
        cells=row["cells"], boxes=row["boxes"],
    )
    if not run_brute:
        print(
            f"  {'':12} brute force NOT RUN: the quadratic sweep would "
            f"examine {row['pair_product']:,} candidate pairs "
            f"(x{row['pair_product'] / max(row['candidate_pairs'], 1):,.0f} "
            f"the indexed candidates) — infeasible at this scale"
        )
        return row
    brute_out, brute_s, brute_peak, _ = _measure(
        "bruteforce", hierarchy, prev, cur
    )
    assert indexed_out == brute_out, "indexed/bruteforce metric mismatch"
    row["brute_s"] = brute_s
    row["brute_peak_mb"] = brute_peak / 1e6
    record_bench(
        "pair_kernels", f"bruteforce:{row['workload']}", brute_s,
        peak_mb=row["brute_peak_mb"],
        cells=row["cells"], boxes=row["boxes"],
        speedup=brute_s / max(indexed_s, 1e-9),
    )
    print(
        f"  {'':12} brute force {brute_s * 1e3:8.1f} ms / "
        f"{row['brute_peak_mb']:7.1f} MB | "
        f"speedup x{brute_s / max(indexed_s, 1e-9):.1f}, "
        f"memory x{brute_peak / max(indexed_peak, 1):.1f}"
    )
    return row


def _measure_reuse(mode: str, app: str, scale: str):
    """One cold metric-set evaluation under a pair-reuse mode.

    Distributions are rebuilt per call so each mode starts from maps
    with no cached persistent index — reuse-on timings include the
    cold index builds they amortise.
    """
    hierarchy, prev, cur = _distributions(app, scale)
    reset_pair_index_counters()
    tracemalloc.start()
    t0 = time.perf_counter()
    with pair_index_forced("grid"), pair_reuse_forced(mode):
        result = _metric_set(hierarchy, prev, cur)
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak, pair_index_counters().as_dict()


def _compare_reuse(app: str, scale: str) -> dict:
    """Reuse-on vs reuse-off (the per-query PR-6 path) on one workload."""
    on_out, on_s, on_peak, on_counters = _measure_reuse("auto", app, scale)
    off_out, off_s, off_peak, off_counters = _measure_reuse("off", app, scale)
    assert on_out == off_out, "reuse layer changed a metric"
    assert on_counters["index_reuses"] > 0, "persistent indexes never probed"
    assert off_counters["index_reuses"] == 0, "reuse=off still reused"
    row = {
        "workload": f"{app}:{scale}",
        "reuse_on_s": on_s,
        "reuse_off_s": off_s,
        "index_builds": on_counters["index_builds"],
        "index_reuses": on_counters["index_reuses"],
        "speedup": off_s / max(on_s, 1e-9),
    }
    print(
        f"\n  {row['workload']:<12} reuse on {on_s * 1e3:8.1f} ms "
        f"({row['index_builds']} builds amortised over "
        f"{row['index_reuses']} probes) | "
        f"off {off_s * 1e3:8.1f} ms | speedup x{row['speedup']:.2f}"
    )
    record_bench(
        "pair_kernels", f"reuse-on:{row['workload']}", on_s,
        peak_mb=on_peak / 1e6, counters=on_counters,
    )
    record_bench(
        "pair_kernels", f"reuse-off:{row['workload']}", off_s,
        peak_mb=off_peak / 1e6, counters=off_counters,
        speedup=row["speedup"],
    )
    return row


def test_pair_kernels_2d(benchmark):
    """2-D paper scale: the index must agree and not slow things down."""
    scale = bench_scale()
    row = _compare("tp2d", scale)
    hierarchy, prev, cur = _distributions("tp2d", scale)
    with pair_index_forced("grid"):
        benchmark(_metric_set, hierarchy, prev, cur)
    # Identical results asserted inside _compare; the 2-D workloads are
    # small enough that either path is fast — no ordering assertion.
    assert row["candidate_pairs"] <= row["pair_product"]


def test_pair_kernels_3d_deep(benchmark):
    """3-D deep: the indexed metric set must be >= 3x faster.

    At ``REPRO_BENCH_SCALE=paper`` this runs the true ``deep`` scale
    (512^3 finest index space); the CI-sized ``small`` fallback only
    asserts agreement (tiny inputs can't show the asymptotic win).
    """
    scale = "deep" if bench_scale() == "paper" else "small"
    row = _compare("tp3d", scale)
    hierarchy, prev, cur = _distributions("tp3d", scale)
    with pair_index_forced("grid"):
        benchmark(_metric_set, hierarchy, prev, cur)
    if scale == "deep":
        assert row["brute_s"] >= 3.0 * row["indexed_s"], (
            f"expected >= 3x speedup at deep scale, got "
            f"x{row['brute_s'] / max(row['indexed_s'], 1e-9):.2f}"
        )


def test_pair_kernels_reuse_deep(benchmark):
    """3-D deep: the persistent-index metric set must be >= 1.5x faster.

    Reuse-off is the PR-6 per-query baseline (every kernel call builds
    its own throwaway bucket structure); reuse-on answers all of a
    step's queries from one persistent index per owner map.  At
    ``REPRO_BENCH_SCALE=paper`` this runs the true ``deep`` scale; the
    CI-sized ``small`` fallback only asserts agreement.
    """
    scale = "deep" if bench_scale() == "paper" else "small"
    row = _compare_reuse("tp3d", scale)
    hierarchy, prev, cur = _distributions("tp3d", scale)
    with pair_index_forced("grid"), pair_reuse_forced("auto"):
        benchmark(_metric_set, hierarchy, prev, cur)
    if scale == "deep":
        assert row["reuse_off_s"] >= 1.5 * row["reuse_on_s"], (
            f"expected >= 1.5x end-to-end reuse speedup at deep scale, "
            f"got x{row['speedup']:.2f}"
        )


def test_pair_kernels_3d_ultra(benchmark):
    """3-D ultra (1024^3 finest space): indexed only — brute infeasible.

    The brute-force candidate product is printed from the kernel
    counters as the infeasibility record; the quadratic path is not
    executed at this scale.
    """
    scale = "ultra" if bench_scale() == "paper" else "small"
    row = _compare("tp3d", scale, run_brute=(scale == "small"))
    hierarchy, prev, cur = _distributions("tp3d", scale)
    with pair_index_forced("grid"):
        benchmark(_metric_set, hierarchy, prev, cur)
    if scale == "ultra":
        # The pruning gap is the record: candidates must be orders of
        # magnitude below the quadratic product.
        assert row["candidate_pairs"] * 100 <= row["pair_product"]


def test_full_replay_indexed_ultra(benchmark):
    """Full indexed replay of one ultra-scale partitioner run."""
    from repro.engine.components import create
    from repro.simulator import TraceSimulator

    scale = "ultra" if bench_scale() == "paper" else "small"
    trace = paper_trace("tp3d", scale)
    sim = TraceSimulator()
    with pair_index_forced("grid"):
        result = benchmark.pedantic(
            sim.run,
            args=(trace, create("partitioner", "nature+fable"), BENCH_NPROCS),
            rounds=1,
            iterations=1,
        )
    assert len(result.steps) == len(trace)
