"""Dense-raster vs sparse owner-map cost of the simulator metric set.

Times — and measures the peak allocation of — one full per-step metric
evaluation (ghost exchange, message pairs, inter-level transfer,
migration) under both representations:

* **sparse**: box calculus on :class:`~repro.geometry.OwnerMap` corner
  arrays (the production path);
* **dense**: rasterize the same distributions and run the original numpy
  raster reductions (the cross-check path).

Two workloads are exercised: the paper's 2-D scale and the 3-D ``deep``
scale (32^3 base, 5 levels — a 512^3 finest index space) that motivated
the sparse refactor; at ``REPRO_BENCH_SCALE=small`` both shrink to the
CI-sized variants.  The printed table is the reproduction record for the
"sparse is measurably faster and smaller in 3-D" claim.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.engine.components import create
from repro.experiments import paper_trace
from repro.simulator import (
    TraceSimulator,
    ghost_exchange_cells,
    ghost_message_pairs,
    interlevel_transfer_cells,
    migration_cells,
    migration_cells_dense,
)

from conftest import BENCH_NPROCS, bench_scale, record_bench


def _distributions(app: str, scale: str):
    """Two consecutive distributions of one trace under Nature+Fable."""
    trace = paper_trace(app, scale)
    part = create("partitioner", "nature+fable")
    prev_snap, cur_snap = trace[-2], trace[-1]
    prev = part.partition(prev_snap.hierarchy, BENCH_NPROCS)
    cur = part.partition(cur_snap.hierarchy, BENCH_NPROCS, previous=prev)
    return cur_snap.hierarchy, prev, cur


def _sparse_metrics(hierarchy, prev, cur) -> tuple:
    ghost = sum(
        ghost_exchange_cells(cur.maps[level.index]) for level in hierarchy
    )
    pairs = sum(
        ghost_message_pairs(cur.maps[level.index]) for level in hierarchy
    )
    inter = sum(
        interlevel_transfer_cells(
            cur.maps[level.index - 1], cur.maps[level.index], level.ratio
        )
        for level in hierarchy.levels[1:]
    )
    return ghost, pairs, inter, migration_cells(prev, cur)


def _dense_metrics(hierarchy, prev, cur) -> tuple:
    prev_rasters = tuple(m.rasterize() for m in prev.maps)
    cur_rasters = tuple(m.rasterize() for m in cur.maps)
    ghost = sum(
        ghost_exchange_cells(cur_rasters[level.index]) for level in hierarchy
    )
    pairs = sum(
        ghost_message_pairs(cur_rasters[level.index]) for level in hierarchy
    )
    inter = sum(
        interlevel_transfer_cells(
            cur_rasters[level.index - 1],
            cur_rasters[level.index],
            level.ratio,
        )
        for level in hierarchy.levels[1:]
    )
    return ghost, pairs, inter, migration_cells_dense(prev_rasters, cur_rasters)


def _measure(fn, *args) -> tuple[tuple, float, int]:
    """(result, seconds, peak allocated bytes) of one invocation."""
    tracemalloc.start()
    t0 = time.perf_counter()
    result = fn(*args)
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def _compare(app: str, scale: str) -> dict:
    hierarchy, prev, cur = _distributions(app, scale)
    sparse_out, sparse_s, sparse_peak = _measure(
        _sparse_metrics, hierarchy, prev, cur
    )
    dense_out, dense_s, dense_peak = _measure(
        _dense_metrics, hierarchy, prev, cur
    )
    assert sparse_out == dense_out, "sparse/dense metric mismatch"
    row = {
        "workload": f"{app}:{scale}",
        "cells": hierarchy.ncells,
        "boxes": sum(m.nboxes for m in cur.maps),
        "sparse_s": sparse_s,
        "dense_s": dense_s,
        "sparse_peak_mb": sparse_peak / 1e6,
        "dense_peak_mb": dense_peak / 1e6,
    }
    print(
        f"\n  {row['workload']:<12} cells={row['cells']:>10,} "
        f"boxes={row['boxes']:>6} | sparse {sparse_s * 1e3:8.1f} ms "
        f"/ {row['sparse_peak_mb']:8.1f} MB | dense {dense_s * 1e3:8.1f} ms "
        f"/ {row['dense_peak_mb']:8.1f} MB | "
        f"speedup x{dense_s / max(sparse_s, 1e-9):.1f}, "
        f"memory x{dense_peak / max(sparse_peak, 1):.0f}"
    )
    record_bench("owner_sparse", f"sparse:{row['workload']}", sparse_s,
                 peak_mb=row["sparse_peak_mb"],
                 cells=row["cells"], boxes=row["boxes"])
    record_bench("owner_sparse", f"dense:{row['workload']}", dense_s,
                 peak_mb=row["dense_peak_mb"],
                 cells=row["cells"], boxes=row["boxes"],
                 speedup=dense_s / max(sparse_s, 1e-9))
    return row


def test_owner_metrics_2d(benchmark):
    """2-D paper scale: sparse must stay within the same order as dense."""
    scale = bench_scale()
    row = _compare("tp2d", scale)
    hierarchy, prev, cur = _distributions("tp2d", scale)
    benchmark(_sparse_metrics, hierarchy, prev, cur)
    assert row["sparse_peak_mb"] < max(2.0 * row["dense_peak_mb"], 5.0)


def test_owner_metrics_3d_deep(benchmark):
    """3-D: sparse must beat dense on both time and peak allocation.

    At ``REPRO_BENCH_SCALE=paper`` this runs the true ``deep`` scale
    (512^3 finest index space) where the dense path allocates gigabytes;
    the CI-sized ``small`` fallback still asserts the same ordering.
    """
    scale = "deep" if bench_scale() == "paper" else "small"
    row = _compare("tp3d", scale)
    hierarchy, prev, cur = _distributions("tp3d", scale)
    benchmark(_sparse_metrics, hierarchy, prev, cur)
    assert row["sparse_peak_mb"] < row["dense_peak_mb"]
    if scale == "deep":
        assert row["sparse_s"] < row["dense_s"]


def test_full_replay_sparse_deep(benchmark):
    """Full sparse replay of the 3-D workload (the unlocked study)."""
    scale = "deep" if bench_scale() == "paper" else "small"
    trace = paper_trace("tp3d", scale)
    sim = TraceSimulator()
    result = benchmark.pedantic(
        sim.run,
        args=(trace, create("partitioner", "nature+fable"), BENCH_NPROCS),
        rounds=1,
        iterations=1,
    )
    assert len(result.steps) == len(trace)